//! The deterministic `VERIFY_<config>.json` artifact.
//!
//! Rendered through `punchsim-obs`'s insertion-ordered [`Json`] builder so
//! equal explorations produce byte-identical files — CI `cmp`s these
//! against checked-in baselines, making any drift in the state encoding,
//! the choice enumeration order or the property evaluation visible as a
//! build failure.

use punchsim_obs::Json;

use crate::checker::Exploration;
use crate::scenario::{VerifyConfig, STALL_BOUND};

/// Schema identifier stamped into every artifact.
pub const SCHEMA: &str = "punchsim-verify-v1";

/// Renders the artifact for `cfg`'s exploration, trailing-newline
/// terminated and byte-stable across runs.
pub fn render_report(cfg: &VerifyConfig, exp: &Exploration) -> String {
    let mut root = Json::obj();
    root.push("schema", Json::Str(SCHEMA.to_string()));

    let mut config = Json::obj();
    config.push("mesh", Json::Str(format!("{}x{}", cfg.width, cfg.height)));
    config.push("scheme", Json::Str(cfg.scheme.tag().to_string()));
    config.push("faulty", Json::Bool(cfg.faulty));
    config.push("max_faults", Json::Int(i64::from(cfg.max_faults)));
    config.push("broken", Json::Bool(cfg.broken));
    config.push("stall_bound", Json::Int(STALL_BOUND as i64));
    root.push("config", config);

    let mut space = Json::obj();
    space.push("reachable_states", Json::Int(exp.reachable as i64));
    space.push("edges", Json::Int(exp.edges as i64));
    space.push("terminal_states", Json::Int(exp.terminals as i64));
    space.push("max_depth", Json::Int(exp.max_depth as i64));
    space.push("max_stall_age", Json::Int(exp.max_stall_age as i64));
    root.push("state_space", space);

    let mut props = Json::obj();
    for p in &exp.properties {
        let mut entry = Json::obj();
        entry.push(
            "status",
            Json::Str(if p.proved { "proved" } else { "violated" }.to_string()),
        );
        entry.push("detail", Json::Str(p.detail.clone()));
        match &p.counterexample {
            None => {
                entry.push("counterexample", Json::Null);
            }
            Some(ce) => {
                let mut c = Json::obj();
                c.push("kind", Json::Str(ce.kind.label().to_string()));
                c.push("length", Json::Int(ce.choices.len() as i64));
                c.push("ends_in_error", Json::Bool(ce.ends_in_error));
                c.push(
                    "choices",
                    Json::Arr(ce.choices.iter().map(|ch| Json::Str(ch.label())).collect()),
                );
                entry.push("counterexample", c);
            }
        }
        props.push(p.name, entry);
    }
    root.push("properties", props);
    root.push("verified", Json::Bool(exp.all_proved()));

    let mut out = root.render();
    out.push('\n');
    out
}
