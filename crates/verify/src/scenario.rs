//! The bounded verification scenario the checker explores.
//!
//! A scenario is a small mesh, a power scheme, a tightened watchdog, a
//! fixed warmup that lets every router fall asleep, and a fixed pair of
//! corner-to-corner control packets injected *before* exploration starts.
//! Injecting everything up front makes the transition relation invariant
//! under a uniform time shift, which is what justifies merging states whose
//! canonical encodings (all absolute cycles rebased to "now") collide.

use punchsim_core::build_power_manager;
use punchsim_faults::ChoiceInjector;
use punchsim_noc::{
    IdleInfo, Message, MsgClass, Network, PgCounters, PmEvent, PowerManager, PowerState, TickMode,
};
use punchsim_obs::{EventSink, Stamped};
use punchsim_types::{
    Cycle, FaultChoice, Mesh, NodeId, SchemeKind, SimConfig, SimError, VnetId, WatchdogConfig,
};

/// Stall threshold used during exploration — the bound the bounded-stall
/// property is checked against. Small enough to keep the state space tight,
/// large enough that every fault-free and single-fault wakeup completes.
pub const STALL_BOUND: Cycle = 64;

/// Escalation threshold for correct scenarios. Broken scenarios set 0
/// (escalation disabled) so the suppressed-WU bug is actually reachable.
pub const ESCALATE_AFTER: Cycle = 16;

/// Warmup cycles before injection: with `idle_timeout = 4` every router in
/// a 2x3 mesh is fully gated well before this.
pub const WARMUP: Cycle = 32;

/// Duration of the bounded [`FaultChoice::StickOff`] variant the checker
/// enumerates (the unbounded variant is enumerated alongside it).
pub const STICK_DURATION: Cycle = 16;

/// One bounded verification instance: mesh size, scheme and fault mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Mesh width (2 or 3 keeps the state space exhaustive-friendly).
    pub width: u16,
    /// Mesh height.
    pub height: u16,
    /// Power-gating scheme under verification.
    pub scheme: SchemeKind,
    /// When `true`, the checker branches over the fault alphabet every
    /// cycle; when `false` only `FaultChoice::None` is enabled.
    pub faulty: bool,
    /// Fault budget: the checker explores every placement of at most this
    /// many faults along a trajectory (the classic bounded-fault
    /// assumption — the per-cycle alphabet with an unbounded budget is not
    /// finitely enumerable in useful time even on a 2x2 mesh).
    pub max_faults: u32,
    /// When `true`, the scheme is wrapped in [`SuppressWu`] (the WU
    /// safety-net level signal never reaches the manager) and watchdog
    /// escalation is disabled — the intentionally-broken configuration
    /// that must yield a minimal counterexample.
    pub broken: bool,
    /// Abort exploration beyond this many distinct states.
    pub max_states: usize,
    /// Abort exploration beyond this BFS depth.
    pub max_depth: u64,
}

impl VerifyConfig {
    /// The 2x2 instance of `scheme`.
    pub fn mesh2x2(scheme: SchemeKind) -> Self {
        VerifyConfig {
            width: 2,
            height: 2,
            scheme,
            faulty: false,
            max_faults: 2,
            broken: false,
            max_states: 400_000,
            max_depth: 4_000,
        }
    }

    /// The 2x3 instance of `scheme`.
    pub fn mesh2x3(scheme: SchemeKind) -> Self {
        VerifyConfig {
            width: 2,
            height: 3,
            ..Self::mesh2x2(scheme)
        }
    }

    /// Enables per-cycle fault branching.
    pub fn with_faults(mut self) -> Self {
        self.faulty = true;
        self
    }

    /// Switches to the intentionally-broken (WU-suppressed) manager.
    pub fn with_broken_manager(mut self) -> Self {
        self.broken = true;
        self
    }

    /// Stable label used in artifact names: `2x2_ppf_faulty` etc.
    pub fn label(&self) -> String {
        let mode = match (self.faulty, self.broken) {
            (_, true) => "broken",
            (true, false) => "faulty",
            (false, false) => "clean",
        };
        format!(
            "{}x{}_{}_{}",
            self.width,
            self.height,
            self.scheme.tag(),
            mode
        )
    }
}

/// A power manager that silently discards every [`PmEvent::BlockedNeed`]
/// before its inner scheme sees it — modelling a controller whose WU
/// level-signal input is disconnected. With watchdog escalation also
/// disabled this is the intentionally-broken configuration the checker
/// must catch: under conventional gating a sleeping router on the path is
/// never woken and the blocked packet stalls forever.
pub struct SuppressWu {
    inner: Box<dyn PowerManager>,
    filtered: Vec<PmEvent>,
}

impl std::fmt::Debug for SuppressWu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuppressWu")
            .field("inner", &self.inner.kind())
            .finish()
    }
}

impl SuppressWu {
    /// Wraps `inner`, disconnecting its WU input.
    pub fn new(inner: Box<dyn PowerManager>) -> Self {
        SuppressWu {
            inner,
            filtered: Vec::new(),
        }
    }
}

impl PowerManager for SuppressWu {
    fn kind(&self) -> SchemeKind {
        self.inner.kind()
    }

    fn state(&self, r: NodeId) -> PowerState {
        self.inner.state(r)
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.filtered.clear();
        self.filtered.extend(
            events
                .iter()
                .filter(|e| !matches!(e, PmEvent::BlockedNeed { .. }))
                .copied(),
        );
        self.inner.tick(cycle, &self.filtered, idle);
    }

    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.inner.force_wake(r, cycle);
    }

    fn pending_punches(&self) -> usize {
        self.inner.pending_punches()
    }

    fn counters(&self) -> &PgCounters {
        self.inner.counters()
    }

    fn punch_hops_at(&self) -> Option<&[u64]> {
        self.inner.punch_hops_at()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.inner.set_tracing(enabled);
    }

    fn drain_trace(&mut self) -> Vec<Stamped> {
        self.inner.drain_trace()
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        self.inner.next_event_at(now)
    }

    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        self.inner.tick_quiet(from, to, idle);
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        let inner = self.inner.clone_boxed()?;
        Some(Box::new(SuppressWu {
            inner,
            filtered: Vec::new(),
        }))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        // The wrapper itself is stateless (`filtered` is per-tick scratch).
        self.inner.encode_state(now, out)
    }

    fn arm_choice(&mut self, choice: FaultChoice) -> bool {
        self.inner.arm_choice(choice)
    }
}

/// Builds the scenario network: configured mesh + scheme, tightened
/// watchdog, strict one-tick-per-cycle stepping, warmup, then the two
/// corner-to-corner control packets. Returns the fully-armed BFS root.
///
/// When `sink` is `Some`, it is attached *before* injection so a
/// counterexample replay captures the inject events too (a network with a
/// sink attached cannot be forked, so the checker passes `None`).
///
/// # Errors
///
/// Returns any configuration or warmup simulation error verbatim.
pub fn build_network(
    cfg: &VerifyConfig,
    sink: Option<Box<dyn EventSink>>,
) -> Result<Network, SimError> {
    let mut sim = SimConfig::with_scheme(cfg.scheme);
    sim.noc.topology = Mesh::new(cfg.width, cfg.height).into();
    sim.noc.watchdog = WatchdogConfig {
        stall_threshold: STALL_BOUND,
        invariant_checks: true,
        escalate_after: if cfg.broken { 0 } else { ESCALATE_AFTER },
    };
    let mut pm = build_power_manager(&sim)?;
    if cfg.broken {
        pm = Box::new(SuppressWu::new(pm));
    }
    if cfg.faulty {
        pm = Box::new(ChoiceInjector::new(pm, sim.noc.topology));
    }
    let mut net = Network::new(&sim.noc, pm)?;
    net.set_tick_mode(TickMode::Naive);
    net.run(WARMUP)?;
    if let Some(s) = sink {
        net.set_sink(s);
    }
    let n = sim.noc.topology.nodes() as u16;
    for (src, dst) in [(0, n - 1), (n - 1, 0)] {
        net.send(Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class: MsgClass::Control,
            payload: u64::from(src),
            gen_cycle: net.cycle(),
        })?;
    }
    Ok(net)
}
