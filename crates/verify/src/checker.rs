//! Exhaustive BFS over the joint power-FSM / punch-fabric / WU-handshake
//! state space, with minimal-counterexample extraction.
//!
//! States are canonical byte encodings ([`StepOracle::canonical_key`]);
//! edges are one simulated cycle under one enabled [`FaultChoice`]. BFS
//! guarantees the first violation found lies at minimal depth, so the
//! reported counterexample is a shortest one under the fixed choice
//! enumeration order.
//!
//! Expanded states are *materialized by path replay* from a single forked
//! root rather than stored as live clones — the frontier holds only byte
//! keys and parent pointers, keeping memory proportional to the number of
//! distinct states, not their size.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use punchsim_core::StepOracle;
use punchsim_obs::PowerTag;
use punchsim_types::{Cycle, FaultChoice, NodeId, SimError};

/// Property name: every asserted-and-unanswered WU handshake eventually
/// reaches a state where the target router is on or waking (or the
/// watchdog reports the stall — accounted under bounded-stall).
pub const PROP_NO_LOST_WAKEUP: &str = "no_lost_wakeup";
/// Property name: every reachable state can still reach full delivery (or
/// a reported watchdog stall) — the protocol never wedges silently.
pub const PROP_NO_DEADLOCK: &str = "no_deadlock";
/// Property name: no reachable state exceeds the configured stall bound
/// without the watchdog reporting it, and observed stall ages stay within
/// the bound.
pub const PROP_BOUNDED_STALL: &str = "bounded_stall";

/// How a violating edge was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A stall whose oldest blocked packet sat on a powered-off router —
    /// the wakeup it needed never happened.
    LostWakeup,
    /// A stall not attributable to a sleeping router (or past the bound).
    BoundedStall,
    /// A per-cycle invariant check tripped.
    Invariant,
    /// A witness state from which no delivery and no watchdog report is
    /// reachable. Only produced by the no-deadlock pass, never by an edge.
    Deadlock,
}

impl ViolationKind {
    /// Stable lowercase label used in artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::LostWakeup => "lost_wakeup",
            ViolationKind::BoundedStall => "unbounded_stall",
            ViolationKind::Invariant => "invariant",
            ViolationKind::Deadlock => "deadlock",
        }
    }
}

/// One violating edge found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the state the violating step was taken from.
    pub state: usize,
    /// The choice whose step errored.
    pub choice: FaultChoice,
    /// Classification of the error.
    pub kind: ViolationKind,
    /// Human-readable diagnosis from the underlying error.
    pub detail: String,
}

/// A concrete replayable trace: the per-cycle choices from the BFS root.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// One choice per cycle, starting at the root. Replay arms each choice
    /// then ticks once.
    pub choices: Vec<FaultChoice>,
    /// Classification of what the trace demonstrates.
    pub kind: ViolationKind,
    /// Human-readable diagnosis.
    pub detail: String,
    /// `true` when the final tick errors (stall/invariant); `false` when
    /// the trace merely reaches a witness state (deadlock, unmet EF).
    pub ends_in_error: bool,
}

/// Verdict for one of the three checked properties.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// One of the `PROP_*` names.
    pub name: &'static str,
    /// `true` when the property holds over the whole reachable space.
    pub proved: bool,
    /// Supporting detail (bound observed, or violation diagnosis).
    pub detail: String,
    /// Minimal counterexample when `proved` is `false`.
    pub counterexample: Option<Counterexample>,
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct canonical states reached.
    pub reachable: usize,
    /// Explored transitions (successful steps plus violating edges).
    pub edges: usize,
    /// States with every injected packet delivered.
    pub terminals: usize,
    /// Deepest BFS layer reached.
    pub max_depth: u64,
    /// Largest stall age observed in any reachable state.
    pub max_stall_age: Cycle,
    /// Verdicts in fixed order: no-lost-wakeup, no-deadlock, bounded-stall.
    pub properties: Vec<PropertyResult>,
}

impl Exploration {
    /// `true` when all three properties are proved.
    pub fn all_proved(&self) -> bool {
        self.properties.iter().all(|p| p.proved)
    }

    /// The first (minimal) counterexample across the violated properties.
    pub fn first_counterexample(&self) -> Option<&Counterexample> {
        self.properties
            .iter()
            .filter_map(|p| p.counterexample.as_ref())
            .min_by_key(|c| c.choices.len())
    }
}

/// Why an exploration could not complete.
#[derive(Debug)]
pub enum VerifyError {
    /// The oracle cannot be fingerprinted or forked (unsupported manager).
    Unsupported(&'static str),
    /// More distinct states than the configured cap.
    StateCap(usize),
    /// A BFS layer deeper than the configured cap.
    DepthCap(u64),
    /// Replaying a recorded edge produced a different outcome — an
    /// internal soundness bug, never a property verdict.
    ReplayDiverged(String),
    /// Scenario construction failed.
    Sim(SimError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Unsupported(what) => {
                write!(f, "system cannot be verified: {what}")
            }
            VerifyError::StateCap(n) => {
                write!(f, "state cap exceeded: more than {n} distinct states")
            }
            VerifyError::DepthCap(d) => write!(f, "depth cap exceeded at BFS layer {d}"),
            VerifyError::ReplayDiverged(why) => write!(f, "edge replay diverged: {why}"),
            VerifyError::Sim(e) => write!(f, "scenario error: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

/// Per-state record: parent pointer for path reconstruction plus the
/// property observations extracted when the state was first discovered.
#[derive(Debug)]
struct StateRec {
    parent: Option<(usize, FaultChoice)>,
    depth: u64,
    terminal: bool,
    stall_age: Cycle,
    /// Bit `r` set while router `r`'s WU handshake is pending.
    wu_mask: u32,
    /// Bit `r` set while router `r` is on or waking.
    awake_mask: u32,
    /// Faults spent on the path to this state (part of the state identity:
    /// equal encodings with different remaining budgets must not merge).
    faults_used: u32,
    succs: Vec<usize>,
}

/// The exhaustive checker over any [`StepOracle`].
pub struct Checker<O: StepOracle> {
    root: O,
    faulty: bool,
    max_faults: u32,
    max_states: usize,
    max_depth: u64,
    stall_bound: Cycle,
    stick_duration: Cycle,
}

impl<O: StepOracle> Checker<O> {
    /// Builds a checker rooted at `root`'s current state.
    ///
    /// `faulty` enables the per-cycle fault alphabet; `stall_bound` is the
    /// bounded-stall property's bound (must match the oracle's watchdog
    /// threshold); `stick_duration` is the bounded stuck-off epoch length
    /// enumerated alongside the unbounded one.
    pub fn new(
        root: O,
        faulty: bool,
        max_faults: u32,
        max_states: usize,
        max_depth: u64,
        stall_bound: Cycle,
        stick_duration: Cycle,
    ) -> Self {
        Checker {
            root,
            faulty,
            max_faults,
            max_states,
            max_depth,
            stall_bound,
            stick_duration,
        }
    }

    /// Runs the exhaustive exploration and evaluates the three properties.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Unsupported`] for an unforkable/unencodable oracle,
    /// the cap errors when exploration outgrows the configured limits, and
    /// [`VerifyError::ReplayDiverged`] if path-replay materialization ever
    /// disagrees with a recorded edge (an internal bug, reported honestly
    /// instead of being folded into a verdict).
    pub fn run(&self) -> Result<Exploration, VerifyError> {
        let root_key = self
            .root
            .canonical_key()
            .ok_or(VerifyError::Unsupported("canonical encoding unavailable"))?;
        if self.root.fork().is_none() {
            return Err(VerifyError::Unsupported("system is not forkable"));
        }

        let mut states: Vec<StateRec> = vec![observe(&self.root, None, 0, 0)];
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        index.insert(budgeted(root_key, 0), 0);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        let mut violations: Vec<Violation> = Vec::new();
        let mut edges = 0usize;

        while let Some(cur) = queue.pop_front() {
            if states[cur].terminal {
                continue;
            }
            let depth = states[cur].depth;
            if depth >= self.max_depth {
                return Err(VerifyError::DepthCap(depth));
            }
            let spent = states[cur].faults_used;
            let net = self.materialize(&states, cur)?;
            for choice in self.enabled_choices(&net, spent) {
                let now_spent = spent + u32::from(!choice.is_none());
                let mut succ = net
                    .fork()
                    .ok_or(VerifyError::Unsupported("fork failed mid-exploration"))?;
                match succ.step(choice) {
                    Ok(false) => continue,
                    Ok(true) => {
                        edges += 1;
                        let key = budgeted(
                            succ.canonical_key().ok_or(VerifyError::Unsupported(
                                "canonical encoding unavailable mid-exploration",
                            ))?,
                            now_spent,
                        );
                        let next = match index.get(&key) {
                            Some(&i) => i,
                            None => {
                                let i = states.len();
                                if i >= self.max_states {
                                    return Err(VerifyError::StateCap(self.max_states));
                                }
                                states.push(observe(
                                    &succ,
                                    Some((cur, choice)),
                                    depth + 1,
                                    now_spent,
                                ));
                                index.insert(key, i);
                                queue.push_back(i);
                                i
                            }
                        };
                        states[cur].succs.push(next);
                    }
                    Err(e) => {
                        edges += 1;
                        violations.push(classify(&succ, cur, choice, &e));
                    }
                }
            }
        }

        let properties = self.evaluate(&states, &violations);
        Ok(Exploration {
            reachable: states.len(),
            edges,
            terminals: states.iter().filter(|s| s.terminal).count(),
            max_depth: states.iter().map(|s| s.depth).max().unwrap_or(0),
            max_stall_age: states.iter().map(|s| s.stall_age).max().unwrap_or(0),
            properties,
        })
    }

    /// Rebuilds the live system for state `target` by replaying its choice
    /// path from a fresh fork of the root.
    fn materialize(&self, states: &[StateRec], target: usize) -> Result<O, VerifyError> {
        let path = path_to(states, target);
        let mut net = self
            .root
            .fork()
            .ok_or(VerifyError::Unsupported("fork failed mid-exploration"))?;
        for &choice in &path {
            match net.step(choice) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(VerifyError::ReplayDiverged(format!(
                        "choice {} no longer honoured",
                        choice.label()
                    )))
                }
                Err(e) => {
                    return Err(VerifyError::ReplayDiverged(format!(
                        "recorded Ok edge now errors: {e}"
                    )))
                }
            }
        }
        Ok(net)
    }

    /// The fixed choice enumeration order at `net`'s current state:
    /// fault-free first, then punch drops, WU drops, per-destination punch
    /// corruption, and bounded/unbounded stuck-off epochs for every
    /// currently-gated router. Fault choices are enabled only while budget
    /// remains. The order is part of the determinism contract — artifacts
    /// are byte-compared in CI.
    fn enabled_choices(&self, net: &O, faults_used: u32) -> Vec<FaultChoice> {
        let mut v = vec![FaultChoice::None];
        if self.faulty && faults_used < self.max_faults {
            v.push(FaultChoice::DropPunch);
            v.push(FaultChoice::DropWu);
            for r in 0..net.routers() {
                v.push(FaultChoice::CorruptPunch {
                    dst: NodeId(r as u16),
                });
            }
            for r in 0..net.routers() {
                if net.power_tag(r) == PowerTag::Off {
                    v.push(FaultChoice::StickOff {
                        router: NodeId(r as u16),
                        duration: Some(self.stick_duration),
                    });
                    v.push(FaultChoice::StickOff {
                        router: NodeId(r as u16),
                        duration: None,
                    });
                }
            }
        }
        v
    }

    /// Evaluates the three properties over the explored graph.
    fn evaluate(&self, states: &[StateRec], violations: &[Violation]) -> Vec<PropertyResult> {
        let routers = self.root.routers();
        // States with at least one violating edge: their trajectories end
        // in a *reported* watchdog event, so reverse-reachability passes
        // treat them as accounted-for rather than silently wedged.
        let mut reported = vec![false; states.len()];
        for v in violations {
            reported[v.state] = true;
        }
        let reverse = reverse_edges(states);

        vec![
            self.eval_no_lost_wakeup(states, violations, &reported, &reverse, routers),
            self.eval_no_deadlock(states, violations, &reported, &reverse),
            self.eval_bounded_stall(states, violations),
        ]
    }

    fn eval_no_lost_wakeup(
        &self,
        states: &[StateRec],
        violations: &[Violation],
        reported: &[bool],
        reverse: &[Vec<usize>],
        routers: usize,
    ) -> PropertyResult {
        if let Some(v) = violations
            .iter()
            .find(|v| v.kind == ViolationKind::LostWakeup)
        {
            return PropertyResult {
                name: PROP_NO_LOST_WAKEUP,
                proved: false,
                detail: v.detail.clone(),
                counterexample: Some(violation_trace(states, v)),
            };
        }
        // EF pass: every wu_pending(r) state must reach awake(r) or a
        // reported-violation state.
        for r in 0..routers {
            let bit = 1u32 << r;
            let good: Vec<usize> = (0..states.len())
                .filter(|&s| states[s].awake_mask & bit != 0 || reported[s])
                .collect();
            let can_reach = reach_backward(reverse, &good);
            if let Some(bad) =
                (0..states.len()).find(|&s| states[s].wu_mask & bit != 0 && !can_reach[s])
            {
                let detail =
                    format!("router {r}: WU pending in a state from which no path wakes it");
                return PropertyResult {
                    name: PROP_NO_LOST_WAKEUP,
                    proved: false,
                    detail: detail.clone(),
                    counterexample: Some(Counterexample {
                        choices: path_to(states, bad),
                        kind: ViolationKind::LostWakeup,
                        detail,
                        ends_in_error: false,
                    }),
                };
            }
        }
        PropertyResult {
            name: PROP_NO_LOST_WAKEUP,
            proved: true,
            detail: format!(
                "every pending WU handshake in {} reachable states can reach a wake",
                states.len()
            ),
            counterexample: None,
        }
    }

    fn eval_no_deadlock(
        &self,
        states: &[StateRec],
        violations: &[Violation],
        reported: &[bool],
        reverse: &[Vec<usize>],
    ) -> PropertyResult {
        let good: Vec<usize> = (0..states.len())
            .filter(|&s| states[s].terminal || reported[s])
            .collect();
        let resolved = reach_backward(reverse, &good);
        if let Some(stuck) = (0..states.len()).find(|&s| !resolved[s]) {
            let detail =
                "state from which neither delivery nor a watchdog report is reachable".to_string();
            return PropertyResult {
                name: PROP_NO_DEADLOCK,
                proved: false,
                detail: detail.clone(),
                counterexample: Some(Counterexample {
                    choices: path_to(states, stuck),
                    kind: ViolationKind::Deadlock,
                    detail,
                    ends_in_error: false,
                }),
            };
        }
        let via_report = violations.len();
        PropertyResult {
            name: PROP_NO_DEADLOCK,
            proved: true,
            detail: if via_report == 0 {
                format!(
                    "all {} reachable states can reach full delivery",
                    states.len()
                )
            } else {
                format!(
                    "all {} reachable states reach delivery or one of {via_report} reported stalls",
                    states.len()
                )
            },
            counterexample: None,
        }
    }

    fn eval_bounded_stall(&self, states: &[StateRec], violations: &[Violation]) -> PropertyResult {
        if let Some(v) = violations.iter().find(|v| {
            matches!(
                v.kind,
                ViolationKind::BoundedStall | ViolationKind::Invariant
            )
        }) {
            return PropertyResult {
                name: PROP_BOUNDED_STALL,
                proved: false,
                detail: v.detail.clone(),
                counterexample: Some(violation_trace(states, v)),
            };
        }
        let max = states.iter().map(|s| s.stall_age).max().unwrap_or(0);
        PropertyResult {
            name: PROP_BOUNDED_STALL,
            proved: true,
            detail: format!(
                "worst observed stall age {max} of bound {}",
                self.stall_bound
            ),
            counterexample: None,
        }
    }
}

/// Extracts the property observations of `net` into a state record.
fn observe<O: StepOracle>(
    net: &O,
    parent: Option<(usize, FaultChoice)>,
    depth: u64,
    faults_used: u32,
) -> StateRec {
    let mut wu_mask = 0u32;
    let mut awake_mask = 0u32;
    for r in 0..net.routers().min(32) {
        if net.wu_pending(r) {
            wu_mask |= 1 << r;
        }
        if matches!(net.power_tag(r), PowerTag::On | PowerTag::Waking) {
            awake_mask |= 1 << r;
        }
    }
    StateRec {
        parent,
        depth,
        terminal: net.delivered_all(),
        stall_age: net.stall_age(),
        wu_mask,
        awake_mask,
        faults_used,
        succs: Vec::new(),
    }
}

/// Appends the spent-fault count to a canonical key so states reached with
/// different remaining budgets stay distinct in the index.
fn budgeted(mut key: Vec<u8>, faults_used: u32) -> Vec<u8> {
    key.extend_from_slice(&faults_used.to_le_bytes());
    key
}

/// Classifies a step error into a violation record.
fn classify<O: StepOracle>(net: &O, state: usize, choice: FaultChoice, e: &SimError) -> Violation {
    match e {
        SimError::Stall(report) => {
            let lost = report.oldest_blocked.as_ref().is_some_and(|b| {
                b.blocked_on
                    .is_some_and(|r| net.power_tag(r.0 as usize) == PowerTag::Off)
            });
            let kind = if lost {
                ViolationKind::LostWakeup
            } else {
                ViolationKind::BoundedStall
            };
            Violation {
                state,
                choice,
                kind,
                detail: format!(
                    "stalled {} cycles with {} in flight ({} routers off)",
                    report.stalled_for,
                    report.in_flight_packets,
                    report.off_routers.len()
                ),
            }
        }
        other => Violation {
            state,
            choice,
            kind: ViolationKind::Invariant,
            detail: format!("{other}"),
        },
    }
}

/// The choice path from the root to `target`, in replay order.
fn path_to(states: &[StateRec], target: usize) -> Vec<FaultChoice> {
    let mut path = Vec::new();
    let mut cur = target;
    while let Some((parent, choice)) = states[cur].parent {
        path.push(choice);
        cur = parent;
    }
    path.reverse();
    path
}

/// The full replayable trace of a violating edge: path to its source state
/// plus the violating choice itself.
fn violation_trace(states: &[StateRec], v: &Violation) -> Counterexample {
    let mut choices = path_to(states, v.state);
    choices.push(v.choice);
    Counterexample {
        choices,
        kind: v.kind,
        detail: v.detail.clone(),
        ends_in_error: true,
    }
}

/// Reverse adjacency lists of the explored Ok-edge graph.
fn reverse_edges(states: &[StateRec]) -> Vec<Vec<usize>> {
    let mut rev = vec![Vec::new(); states.len()];
    for (s, rec) in states.iter().enumerate() {
        for &t in &rec.succs {
            rev[t].push(s);
        }
    }
    rev
}

/// Multi-source reverse BFS: `out[s]` is `true` when `s` reaches one of
/// `sources` along forward edges.
fn reach_backward(reverse: &[Vec<usize>], sources: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; reverse.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in sources {
        if !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &p in &reverse[s] {
            if !seen[p] {
                seen[p] = true;
                queue.push_back(p);
            }
        }
    }
    seen
}
