//! Exhaustive wakeup-protocol model checker with counterexample replay.
//!
//! For small meshes (2x2, 2x3) this crate explores the *entire* joint
//! state space of the power FSMs, BET epochs, punch sideband and the WU
//! handshake — fault-free and under a per-cycle fault alphabet (punch
//! drop/corruption, WU loss, stuck-off epochs) — and either proves three
//! properties or produces a minimal counterexample:
//!
//! * **no-lost-wakeup** — a pending WU handshake always reaches a state
//!   where its target router is on or waking (or the watchdog reports it);
//! * **no-deadlock** — every reachable state can still reach full
//!   delivery or a reported watchdog stall;
//! * **bounded-stall** — no reachable state's stall age exceeds the
//!   configured bound without a report.
//!
//! Counterexamples lower into `punchsim-obs` event streams and replay
//! through the standard JSONL / Chrome-trace exporters, so a protocol bug
//! found by the checker can be inspected in Perfetto exactly like any
//! simulated run. The emitted `VERIFY_<config>.json` artifacts are
//! byte-stable and gated in CI.
//!
//! # Examples
//!
//! Prove the fault-free 2x2 Power Punch scenario:
//!
//! ```
//! use punchsim_types::SchemeKind;
//! use punchsim_verify::{run_verification, VerifyConfig};
//!
//! let cfg = VerifyConfig::mesh2x2(SchemeKind::PowerPunchFull);
//! let outcome = run_verification(&cfg).unwrap();
//! assert!(outcome.exploration.all_proved());
//! ```

pub mod checker;
pub mod replay;
pub mod report;
pub mod scenario;

pub use checker::{
    Checker, Counterexample, Exploration, PropertyResult, VerifyError, Violation, ViolationKind,
    PROP_BOUNDED_STALL, PROP_NO_DEADLOCK, PROP_NO_LOST_WAKEUP,
};
pub use replay::{replay, Replay};
pub use report::{render_report, SCHEMA};
pub use scenario::{
    build_network, SuppressWu, VerifyConfig, ESCALATE_AFTER, STALL_BOUND, STICK_DURATION, WARMUP,
};

/// One completed verification: the exploration plus the rendered artifact.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// State-space statistics and the three property verdicts.
    pub exploration: Exploration,
    /// The byte-stable `VERIFY_<label>.json` artifact body.
    pub report: String,
}

/// Builds `cfg`'s scenario, runs the exhaustive exploration and renders
/// the artifact.
///
/// # Errors
///
/// Propagates scenario-construction failures and exploration cap/support
/// errors. A property *violation* is not an error — it is reported in the
/// outcome with a minimal counterexample.
pub fn run_verification(cfg: &VerifyConfig) -> Result<VerifyOutcome, VerifyError> {
    let root = scenario::build_network(cfg, None)?;
    let checker = Checker::new(
        root,
        cfg.faulty,
        cfg.max_faults,
        cfg.max_states,
        cfg.max_depth,
        STALL_BOUND,
        STICK_DURATION,
    );
    let exploration = checker.run()?;
    let report = render_report(cfg, &exploration);
    Ok(VerifyOutcome {
        exploration,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::SchemeKind;

    #[test]
    fn clean_2x2_power_punch_proves_all_three() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::PowerPunchFull);
        let out = run_verification(&cfg).unwrap();
        assert!(out.exploration.all_proved(), "{:?}", out.exploration);
        assert!(out.exploration.terminals > 0);
        assert!(out.exploration.max_stall_age <= STALL_BOUND);
        assert!(out.report.contains("\"verified\": true"));
    }

    #[test]
    fn clean_2x2_conventional_proves_all_three() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::ConvPg);
        let out = run_verification(&cfg).unwrap();
        assert!(out.exploration.all_proved(), "{:?}", out.exploration);
    }

    #[test]
    fn faulty_2x2_power_punch_proves_under_two_faults() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::PowerPunchFull).with_faults();
        let out = run_verification(&cfg).unwrap();
        assert!(out.exploration.all_proved(), "{:?}", out.exploration);
        // Fault branching must actually widen the space beyond the single
        // fault-free trajectory.
        assert!(
            out.exploration.reachable > 1_000,
            "{}",
            out.exploration.reachable
        );
        assert!(out.exploration.terminals > 1);
    }

    #[test]
    fn broken_manager_yields_lost_wakeup_counterexample() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::ConvPg).with_broken_manager();
        let out = run_verification(&cfg).unwrap();
        let lost = &out.exploration.properties[0];
        assert_eq!(lost.name, PROP_NO_LOST_WAKEUP);
        assert!(!lost.proved, "{:?}", out.exploration);
        let ce = lost.counterexample.as_ref().expect("counterexample");
        assert!(ce.ends_in_error);
        assert!(!ce.choices.is_empty());
    }

    #[test]
    fn broken_counterexample_replays_through_obs() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::ConvPg).with_broken_manager();
        let out = run_verification(&cfg).unwrap();
        let ce = out
            .exploration
            .first_counterexample()
            .expect("counterexample");
        let rep = replay(&cfg, ce).unwrap();
        assert!(rep.error.is_some(), "replay must reproduce the stall");
        assert!(!rep.events.is_empty());
        assert!(rep.to_jsonl().lines().count() >= rep.events.len());
        assert!(rep.to_chrome_trace().contains("traceEvents"));
    }

    #[test]
    fn reports_are_byte_stable() {
        let cfg = VerifyConfig::mesh2x2(SchemeKind::PowerPunchFull);
        let a = run_verification(&cfg).unwrap().report;
        let b = run_verification(&cfg).unwrap().report;
        assert_eq!(a, b);
    }

    #[test]
    fn labels_distinguish_modes() {
        let base = VerifyConfig::mesh2x3(SchemeKind::PowerPunchFull);
        assert_eq!(base.label(), "2x3_ppf_clean");
        assert_eq!(base.with_faults().label(), "2x3_ppf_faulty");
        assert_eq!(base.with_broken_manager().label(), "2x3_ppf_broken");
    }
}
