//! The Power Punch power-gating schemes — the primary contribution of
//! *Power Punch: Towards Non-blocking Power-gating of NoC Routers*
//! (HPCA 2015) — together with the conventional baselines it is compared
//! against.
//!
//! * [`gating`] — per-router sleep-switch state machines (Figure 1/2)
//! * [`punch`] — punch signals: normalized target sets and the sideband
//!   fabric that relays merged wakeups one hop per cycle (§4.1)
//! * [`codebook`] — enumeration of every distinct signal a link can carry
//!   and the codeword widths (Table 1: 5-bit X links, 2-bit Y links at H=3)
//! * [`manager`] — [`PowerManager`] implementations: conventional gating,
//!   ConvOpt (timeout + early wakeup), PowerPunch-Signal, PowerPunch-PG
//!
//! # Examples
//!
//! Build the manager for a scheme and attach it to a network:
//!
//! ```
//! use punchsim_core::build_power_manager;
//! use punchsim_noc::Network;
//! use punchsim_types::{SchemeKind, SimConfig};
//!
//! let cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
//! let pm = build_power_manager(&cfg).unwrap();
//! let net = Network::new(&cfg.noc, pm).unwrap();
//! assert_eq!(net.power_manager().kind(), SchemeKind::PowerPunchFull);
//! ```

pub mod codebook;
pub mod gating;
pub mod manager;
pub mod oracle;
pub mod punch;
pub mod registry;
pub mod rivals;

pub use codebook::{Codebook, LinkCodebook};
pub use gating::GateArray;
pub use manager::{ConvPgManager, PowerPunchManager};
pub use oracle::StepOracle;
pub use punch::{PunchFabric, PunchSet};
pub use registry::{descriptor, SchemeCtor, SchemeDescriptor, REGISTRY};
pub use rivals::{RingRouterManager, SdmCircuitManager};

use punchsim_faults::FaultInjector;
use punchsim_noc::PowerManager;
use punchsim_types::{SimConfig, SimError};

/// Builds the [`PowerManager`] for the scheme selected in `cfg`.
///
/// When `cfg.faults` activates any fault mechanism, the scheme's manager is
/// wrapped in a [`FaultInjector`] so the configured perturbations apply to
/// its sideband traffic and power states.
///
/// # Errors
///
/// Returns [`SimError::Config`] if `cfg` fails validation.
pub fn build_power_manager(cfg: &SimConfig) -> Result<Box<dyn PowerManager>, SimError> {
    cfg.validate()?;
    // The scheme registry is the one place in the workspace that maps a
    // scheme to its manager constructor.
    let base = (registry::descriptor(cfg.scheme).build)(cfg, &cfg.noc.topology)?;
    if cfg.faults.is_active() {
        let inj = FaultInjector::new(base, &cfg.faults, cfg.noc.topology)?;
        Ok(Box::new(inj))
    } else {
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::{FaultConfig, SchemeKind};

    #[test]
    fn builder_maps_every_scheme() {
        for k in SchemeKind::ALL {
            let cfg = SimConfig::with_scheme(k);
            assert_eq!(build_power_manager(&cfg).unwrap().kind(), k);
        }
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let mut cfg = SimConfig::default();
        cfg.power.wakeup_latency = 0;
        assert!(build_power_manager(&cfg).is_err());
    }

    #[test]
    fn active_faults_wrap_the_scheme_transparently() {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.faults = FaultConfig {
            drop_punch_ppm: FaultConfig::ppm(0.5),
            ..FaultConfig::default()
        };
        // The wrapper reports the wrapped scheme's kind.
        assert_eq!(
            build_power_manager(&cfg).unwrap().kind(),
            SchemeKind::PowerPunchFull
        );
    }
}
