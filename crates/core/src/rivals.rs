//! The structurally different rival baselines of ROADMAP item 3 — power
//! schemes from *other* papers that attack NoC static power from different
//! sides than Power Punch does:
//!
//! * [`SdmCircuitManager`] — SDM-based circuit switching ("Ultra Low-Power
//!   SDM-based Circuit-Switching for NoCs"): a setup request walks the
//!   route ahead of the head flit at [`SETUP_CYCLES_PER_HOP`]; once every
//!   router on the path has its space-division lane configured, the
//!   circuit is *established* and its routers are bypassed — they report
//!   `On` to the network (data flows through the pre-configured lanes)
//!   while their control plane keeps sleeping and accruing gated cycles.
//!   The interesting trade against Power Punch is **setup latency vs.
//!   punch-ahead latency**: a punch covers only `H` hops ahead but takes
//!   effect one hop per cycle; a circuit covers the whole path but pays
//!   the slower per-hop setup walk from the source, and only pays it on a
//!   cold start — held circuits are free.
//! * [`RingRouterManager`] — a bufferless ring-style router ("A Ring
//!   Router Microarchitecture for NoCs"): there are no buffers to leak,
//!   so there is nothing to power-gate and no wakeup latency — but two
//!   head flits reaching the same router latch in the same cycle contend,
//!   and the loser is deflected for [`DEFLECT_PENALTY`] cycles (modeled
//!   as a short busy window on the router).
//!
//! Both managers keep the conventional WU handshake as a safety net
//! (`BlockedNeed` always wakes), so the watchdog's liveness guarantees
//! hold unchanged. Modeling simplifications vs. the source papers are
//! documented in DESIGN.md §18.

use punchsim_noc::snapshot::{put_bool, put_u16, put_u64};
use punchsim_noc::{IdleInfo, PgCounters, PmEvent, PowerManager, PowerState};
use punchsim_types::routing::route_path;
use punchsim_types::{Cycle, NodeId, PowerConfig, RouteView, SchemeKind};

use crate::gating::GateArray;

/// Cycles the SDM setup request needs per hop: slower than the punch
/// sideband's one hop per cycle because each hop arbitrates for and
/// configures a space-division lane before forwarding the request.
pub const SETUP_CYCLES_PER_HOP: Cycle = 2;

/// Cycles a deflected entrant is bounced for at a bufferless ring latch.
pub const DEFLECT_PENALTY: Cycle = 2;

/// One space-division circuit: the route it owns and the state of its
/// setup wavefront.
#[derive(Debug, Clone)]
struct Circuit {
    src: NodeId,
    dst: NodeId,
    /// Every router of the route, source first, destination last.
    path: Vec<NodeId>,
    /// Index of the next router the setup wavefront configures; the
    /// circuit is established once it reaches `path.len()`.
    wavefront: usize,
    /// Cycle at which the wavefront next advances.
    next_advance: Cycle,
    established: bool,
    /// Last cycle the circuit was opened/refreshed or carried a head flit.
    last_use: Cycle,
}

/// SDM-based circuit-switching power management (see module docs).
#[derive(Debug, Clone)]
pub struct SdmCircuitManager {
    view: RouteView,
    gate: GateArray,
    circuits: Vec<Circuit>,
    /// Refcount of established circuits covering each router; a covered
    /// router reports `On` (bypass) regardless of its internal gate state.
    circuit_cover: Vec<u32>,
    /// Idle-vector scratch: covered routers are treated as idle so their
    /// control plane can sleep while circuit data flows through the lanes.
    idle_buf: Vec<bool>,
    /// An established circuit idle for longer than this is torn down
    /// (lane reclaim), once every router on its path is quiescent.
    hold_cycles: Cycle,
    /// Total SDM lanes: at most one outstanding circuit per router on
    /// average; cold setups beyond the cap fall back to the WU safety net.
    max_circuits: usize,
}

impl SdmCircuitManager {
    /// Creates the SDM circuit-switching scheme over any topology/routing
    /// pair. `hop_latency` (router stages + link) sizes the circuit hold
    /// window the way it sizes the punch forewarn window.
    pub fn new(view: impl Into<RouteView>, power: &PowerConfig, hop_latency: u64) -> Self {
        let view: RouteView = view.into();
        let n = view.topo.nodes();
        SdmCircuitManager {
            view,
            gate: GateArray::new(n, power.wakeup_latency, power.idle_timeout),
            circuits: Vec::new(),
            circuit_cover: vec![0; n],
            idle_buf: Vec::with_capacity(n),
            // Long enough that a wormhole packet's tail clears the path
            // before reclaim; short enough that cold traffic can't pin the
            // whole mesh established forever.
            hold_cycles: (8 * hop_latency).max(32),
            max_circuits: n,
        }
    }

    /// Established circuits currently held (for tests and diagnostics).
    pub fn established_circuits(&self) -> usize {
        self.circuits.iter().filter(|c| c.established).count()
    }

    fn open_circuit(&mut self, src: NodeId, dst: NodeId, cycle: Cycle) {
        if src == dst {
            return;
        }
        if let Some(c) = self
            .circuits
            .iter_mut()
            .find(|c| c.src == src && c.dst == dst)
        {
            c.last_use = cycle;
            return;
        }
        if self.circuits.len() >= self.max_circuits {
            // No free SDM lane: the packet rides the conventional WU
            // safety net instead.
            return;
        }
        let mut path = vec![src];
        path.extend(route_path(self.view, src, dst));
        self.circuits.push(Circuit {
            src,
            dst,
            path,
            // The source router's lane is configured locally at request
            // time; the wavefront starts at its first downstream hop.
            wavefront: 1,
            next_advance: cycle + SETUP_CYCLES_PER_HOP,
            established: false,
            last_use: cycle,
        });
    }
}

impl PowerManager for SdmCircuitManager {
    fn kind(&self) -> SchemeKind {
        SchemeKind::SdmCircuit
    }

    fn state(&self, r: NodeId) -> PowerState {
        if self.circuit_cover[r.index()] > 0 {
            // Established circuits bypass the gated control plane: the
            // router is usable by the network even while its gate FSM
            // sleeps (and keeps accruing gated cycles for the energy
            // model).
            PowerState::On
        } else {
            self.gate.state(r)
        }
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.gate.begin_cycle(cycle);
        for ev in events {
            match *ev {
                // Setup launches the moment the NI knows the destination —
                // the same look-ahead slack Power Punch taps for slack 1.
                PmEvent::NiMessageKnown { node, dst } => {
                    self.open_circuit(node, dst, cycle);
                }
                // If the message skipped the slack-1 notification, the
                // injection attempt itself opens the circuit.
                PmEvent::NiReadyToInject { node, dst } => {
                    self.open_circuit(node, dst, cycle);
                }
                // A head flit traversing a circuit keeps it held.
                PmEvent::HeadArrival { router, dst } => {
                    for c in &mut self.circuits {
                        if c.dst == dst && c.path.contains(&router) {
                            c.last_use = cycle;
                        }
                    }
                }
                // Safety net: the conventional WU handshake still wakes a
                // sleeping router the setup wavefront has not reached.
                PmEvent::BlockedNeed { router } => {
                    self.gate.counters_mut().record_wu_assertion(router);
                    self.gate.request_wake(router, cycle);
                }
                PmEvent::FutureInjection { .. } => {}
            }
        }
        // Advance setup wavefronts one lane configuration at a time.
        for c in &mut self.circuits {
            if !c.established && cycle >= c.next_advance {
                // One sideband traversal carries the request to the next
                // router on the path.
                self.gate.counters_mut().punch_hops += 1;
                c.wavefront += 1;
                c.next_advance = cycle + SETUP_CYCLES_PER_HOP;
                if c.wavefront >= c.path.len() {
                    c.established = true;
                    for r in &c.path {
                        self.circuit_cover[r.index()] += 1;
                    }
                }
            }
        }
        // Reclaim lanes: tear down circuits idle past the hold window once
        // their whole path is quiescent (no flit inside or in flight
        // toward any of its routers — the same condition router sleep
        // uses, so a gated-off ex-circuit router never holds a flit).
        let mut i = 0;
        while i < self.circuits.len() {
            let c = &self.circuits[i];
            let expired = cycle.saturating_sub(c.last_use) > self.hold_cycles;
            let drained = c.path.iter().all(|r| idle.idle[r.index()]);
            if expired && (!c.established || drained) {
                let c = self.circuits.remove(i);
                if c.established {
                    for r in &c.path {
                        self.circuit_cover[r.index()] -= 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        // Sleep decisions: a covered router counts as idle — its datapath
        // activity rides the pre-configured SDM lanes, not the gated
        // control plane.
        self.idle_buf.clear();
        self.idle_buf.extend_from_slice(idle.idle);
        for (i, &c) in self.circuit_cover.iter().enumerate() {
            if c > 0 {
                self.idle_buf[i] = true;
            }
        }
        let SdmCircuitManager { gate, idle_buf, .. } = self;
        gate.advance_idle(idle_buf, |_| true);
    }

    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.gate.force_wake(r, cycle);
    }

    fn pending_punches(&self) -> usize {
        // Setup requests still walking their path (stall diagnostics).
        self.circuits.iter().filter(|c| !c.established).count()
    }

    fn counters(&self) -> &PgCounters {
        self.gate.counters()
    }

    fn reset_counters(&mut self) {
        self.gate.reset_counters();
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.circuits.is_empty() {
            // Wavefronts advance and hold windows expire on their own
            // schedule: no skipping while any circuit exists.
            return Some(now);
        }
        self.gate.next_event_at(now, |_| 0)
    }

    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        if self.circuits.is_empty() && idle.idle.iter().all(|&b| b) {
            self.gate.advance_quiet(from, to, |_| 0);
        } else {
            for c in from..to {
                self.tick(c, &[], idle);
            }
        }
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        Some(Box::new(self.clone()))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        self.gate.encode_state(now, out);
        put_u64(out, self.circuits.len() as u64);
        for c in &self.circuits {
            put_u16(out, c.src.0);
            put_u16(out, c.dst.0);
            put_u64(out, c.wavefront as u64);
            put_bool(out, c.established);
            // Rebased cycles: the wavefront schedule is in the future, the
            // last use in the past; both are bounded windows.
            put_u64(out, c.next_advance.saturating_sub(now));
            put_u64(out, now.saturating_sub(c.last_use));
        }
        // `circuit_cover` is derivable from the established circuits and
        // `idle_buf` is per-tick scratch; both excluded.
        true
    }
}

/// Bufferless ring-style router power management (see module docs).
#[derive(Debug, Clone)]
pub struct RingRouterManager {
    counters: PgCounters,
    now: Cycle,
    /// Last cycle a head flit latched at each router (`Cycle::MAX` =
    /// never); a second head in the same cycle is a deflection.
    last_head: Vec<Cycle>,
    /// Deflection busy window per router: until this cycle the latch is
    /// re-circulating the loser and admits no new entrant.
    busy_until: Vec<Cycle>,
}

impl RingRouterManager {
    /// Creates the bufferless ring-router model for `n` routers.
    pub fn new(n: usize) -> Self {
        RingRouterManager {
            counters: PgCounters::new(n),
            now: 0,
            last_head: vec![Cycle::MAX; n],
            busy_until: vec![0; n],
        }
    }
}

impl PowerManager for RingRouterManager {
    fn kind(&self) -> SchemeKind {
        SchemeKind::RingRouter
    }

    fn state(&self, r: NodeId) -> PowerState {
        let until = self.busy_until[r.index()];
        if until > self.now {
            // Not a wakeup transient but the same observable shape: the
            // router admits no new entrant until the deflected flit has
            // cleared the latch.
            PowerState::WakingUp { ready_at: until }
        } else {
            PowerState::On
        }
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], _idle: IdleInfo<'_>) {
        self.now = cycle;
        for ev in events {
            if let PmEvent::HeadArrival { router, .. } = *ev {
                let i = router.index();
                if self.last_head[i] == cycle {
                    // Same-cycle latch contention: the loser deflects.
                    self.counters.deflections += 1;
                    self.busy_until[i] = self.busy_until[i].max(cycle + 1 + DEFLECT_PENALTY);
                } else {
                    self.last_head[i] = cycle;
                }
            }
        }
    }

    fn force_wake(&mut self, r: NodeId, _cycle: Cycle) {
        self.busy_until[r.index()] = 0;
    }

    fn counters(&self) -> &PgCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // The only self-scheduled changes are busy windows expiring.
        self.busy_until.iter().filter(|&&b| b > now).min().copied()
    }

    fn tick_quiet(&mut self, from: Cycle, to: Cycle, _idle: IdleInfo<'_>) {
        if to > from {
            // Per-cycle quiet ticks only move the clock; busy windows are
            // stored absolute and expire by comparison against it.
            self.now = to - 1;
        }
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        Some(Box::new(self.clone()))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        for &until in &self.busy_until {
            put_u64(out, until.saturating_sub(now));
        }
        // `last_head` only matters within the cycle it was written.
        for &last in &self.last_head {
            put_bool(out, last == now);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn power() -> PowerConfig {
        PowerConfig::default()
    }

    fn all_idle(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    fn sleep_all(m: &mut dyn PowerManager, n: usize, from: Cycle, ticks: u64) {
        let idle = all_idle(n);
        for c in from..from + ticks {
            m.tick(c, &[], IdleInfo { idle: &idle });
        }
    }

    #[test]
    fn sdm_setup_establishes_and_bypasses_gated_routers() {
        let mesh = Mesh::new(8, 8);
        let mut m = SdmCircuitManager::new(mesh, &power(), 5);
        sleep_all(&mut m, 64, 0, 10);
        for r in [24, 25, 26, 27, 28] {
            assert_eq!(m.state(NodeId(r)), PowerState::Off);
        }
        // NI at R24 learns a message for R28: a 4-hop circuit opens.
        let idle = all_idle(64);
        m.tick(
            10,
            &[PmEvent::NiMessageKnown {
                node: NodeId(24),
                dst: NodeId(28),
            }],
            IdleInfo { idle: &idle },
        );
        assert_eq!(m.pending_punches(), 1, "one wavefront in flight");
        // The wavefront configures one lane per SETUP_CYCLES_PER_HOP; the
        // path holds 5 routers and the source is pre-configured, so the
        // circuit establishes after 4 advances. Mid-setup nothing reports
        // On — the bypass is end-to-end or nothing.
        for c in 11..=17 {
            assert_eq!(m.state(NodeId(28)), PowerState::Off, "cycle {c}");
            m.tick(c, &[], IdleInfo { idle: &idle });
        }
        m.tick(18, &[], IdleInfo { idle: &idle });
        assert_eq!(m.established_circuits(), 1);
        assert_eq!(m.pending_punches(), 0);
        for r in [24, 25, 26, 27, 28] {
            assert_eq!(m.state(NodeId(r)), PowerState::On, "R{r} bypassed");
        }
        // The bypass never woke the gate FSM: gated cycles keep accruing
        // while the router is externally usable (the SDM energy story).
        let off_before = m.counters().off_cycles[26];
        m.tick(19, &[], IdleInfo { idle: &idle });
        m.tick(20, &[], IdleInfo { idle: &idle });
        assert!(m.counters().off_cycles[26] > off_before);
        assert_eq!(m.state(NodeId(26)), PowerState::On);
        // Setup traffic is visible as sideband hops.
        assert_eq!(m.counters().punch_hops, 4);
    }

    #[test]
    fn sdm_circuit_tears_down_after_hold_window() {
        let mesh = Mesh::new(8, 8);
        let mut m = SdmCircuitManager::new(mesh, &power(), 5);
        let idle = all_idle(64);
        m.tick(
            0,
            &[PmEvent::NiMessageKnown {
                node: NodeId(24),
                dst: NodeId(28),
            }],
            IdleInfo { idle: &idle },
        );
        for c in 1..=9 {
            m.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(m.established_circuits(), 1);
        // Unused past the hold window, the lane is reclaimed and the
        // path's routers fall back to their (sleeping) gate state.
        sleep_all(&mut m, 64, 10, 60);
        assert_eq!(m.established_circuits(), 0);
        assert_eq!(m.state(NodeId(26)), PowerState::Off);
    }

    #[test]
    fn sdm_blocked_need_safety_net_still_wakes() {
        let mesh = Mesh::new(8, 8);
        let mut m = SdmCircuitManager::new(mesh, &power(), 5);
        sleep_all(&mut m, 64, 0, 10);
        assert_eq!(m.state(NodeId(5)), PowerState::Off);
        m.tick(
            10,
            &[PmEvent::BlockedNeed { router: NodeId(5) }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(matches!(m.state(NodeId(5)), PowerState::WakingUp { .. }));
        assert_eq!(m.counters().wu_assertions, 1);
    }

    #[test]
    fn sdm_tick_quiet_matches_per_cycle_loop() {
        let mesh = Mesh::new(8, 8);
        let idle = all_idle(64);
        let mk = || SdmCircuitManager::new(mesh, &power(), 5);
        let prologue = |m: &mut SdmCircuitManager| {
            sleep_all(m, 64, 0, 10);
            m.tick(
                10,
                &[
                    PmEvent::NiMessageKnown {
                        node: NodeId(24),
                        dst: NodeId(28),
                    },
                    PmEvent::BlockedNeed { router: NodeId(5) },
                ],
                IdleInfo { idle: &idle },
            );
        };
        let mut slow = mk();
        let mut fast = mk();
        prologue(&mut slow);
        prologue(&mut fast);
        assert_eq!(fast.next_event_at(11), slow.next_event_at(11));
        for c in 11..200 {
            slow.tick(c, &[], IdleInfo { idle: &idle });
        }
        fast.tick_quiet(11, 200, IdleInfo { idle: &idle });
        for r in 0..64 {
            assert_eq!(slow.state(NodeId(r)), fast.state(NodeId(r)), "router {r}");
        }
        assert_eq!(slow.counters(), fast.counters());
        // Both ends drained their circuits identically.
        assert_eq!(slow.established_circuits(), fast.established_circuits());
    }

    #[test]
    fn ring_router_is_always_on_without_contention() {
        let mesh = Mesh::new(8, 8);
        let mut m = RingRouterManager::new(mesh.nodes());
        sleep_all(&mut m, 64, 0, 50);
        for r in 0..64 {
            assert_eq!(m.state(NodeId(r)), PowerState::On);
        }
        assert_eq!(m.counters().total_off_cycles(), 0);
        // A lone head flit latches without deflection.
        m.tick(
            50,
            &[PmEvent::HeadArrival {
                router: NodeId(9),
                dst: NodeId(12),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert_eq!(m.counters().deflections, 0);
        assert_eq!(m.state(NodeId(9)), PowerState::On);
    }

    #[test]
    fn ring_router_deflects_same_cycle_contenders() {
        let mesh = Mesh::new(8, 8);
        let mut m = RingRouterManager::new(mesh.nodes());
        let idle = all_idle(64);
        // Two heads reach R9's latch in the same cycle: one deflects and
        // the router is busy for the penalty window.
        m.tick(
            10,
            &[
                PmEvent::HeadArrival {
                    router: NodeId(9),
                    dst: NodeId(12),
                },
                PmEvent::HeadArrival {
                    router: NodeId(9),
                    dst: NodeId(33),
                },
            ],
            IdleInfo { idle: &idle },
        );
        assert_eq!(m.counters().deflections, 1);
        assert_eq!(
            m.state(NodeId(9)),
            PowerState::WakingUp {
                ready_at: 10 + 1 + DEFLECT_PENALTY
            }
        );
        assert_eq!(m.next_event_at(11), Some(10 + 1 + DEFLECT_PENALTY));
        // The busy window expires on its own.
        for c in 11..=13 {
            m.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(m.state(NodeId(9)), PowerState::On);
    }

    #[test]
    fn ring_tick_quiet_matches_per_cycle_loop() {
        let idle = all_idle(64);
        let prologue = |m: &mut RingRouterManager| {
            m.tick(
                0,
                &[
                    PmEvent::HeadArrival {
                        router: NodeId(9),
                        dst: NodeId(12),
                    },
                    PmEvent::HeadArrival {
                        router: NodeId(9),
                        dst: NodeId(33),
                    },
                ],
                IdleInfo { idle: &idle },
            );
        };
        let mut slow = RingRouterManager::new(64);
        let mut fast = RingRouterManager::new(64);
        prologue(&mut slow);
        prologue(&mut fast);
        for c in 1..40 {
            slow.tick(c, &[], IdleInfo { idle: &idle });
        }
        fast.tick_quiet(1, 40, IdleInfo { idle: &idle });
        for r in 0..64 {
            assert_eq!(slow.state(NodeId(r)), fast.state(NodeId(r)), "router {r}");
        }
        assert_eq!(slow.counters(), fast.counters());
    }
}
