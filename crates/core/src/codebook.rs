//! Punch-signal codebooks: enumerating every distinct target set a link can
//! carry, and assigning the codewords that make merging contention-free.
//!
//! This reproduces §4.1 steps 3–5 of the paper, generalized over the
//! topology/routing trait layer. For each directed link the closure of
//! reachable *normalized* target sets is computed by fixpoint: a link's
//! sets are all combinations of (a) at most one locally generated wakeup
//! and (b) the relayed remainder of sets arriving on the upstream links,
//! filtered by the routing function's next-hop direction and normalized
//! (implied targets dropped). Nothing here is XY-specific: the turn model
//! enters only through [`RouteView::direction`] and the path predicate
//! inside [`PunchSet::insert_normalized`]. Table 1 of the paper — the 22
//! sets on the X+ link of router 27 of an 8x8 XY mesh for 3-hop punches,
//! encodable in 5 bits — falls out of this enumeration as the special
//! case `RoutingKind::Xy`, as do the 2-bit Y links; YX routing yields the
//! transposed widths.

use std::collections::{BTreeSet, HashMap};

use punchsim_types::{Direction, NodeId, RouteView, Substrate};

use crate::punch::PunchSet;

/// The codebook of one directed link: every non-empty normalized target set
/// it can carry, in canonical order, plus the derived wire width.
#[derive(Debug, Clone)]
pub struct LinkCodebook {
    /// Router the link leaves.
    pub from: NodeId,
    /// Direction the link points.
    pub dir: Direction,
    sets: Vec<PunchSet>,
    /// Precomputed encoder: canonical set → codeword. Built once at
    /// enumeration time so the per-cycle encode is a hash probe, not a
    /// binary search over the set list (the hardware analogue: the encoder
    /// ROM is synthesized with the codebook, not searched at runtime).
    codes: HashMap<PunchSet, u16>,
}

impl LinkCodebook {
    /// Builds a link codebook from its canonical set list, deriving the
    /// encode lookup table. Codewords are `index + 1` in canonical order
    /// (0 stays the idle wire), exactly as the search-based encoder
    /// assigned them.
    fn new(from: NodeId, dir: Direction, sets: Vec<PunchSet>) -> Self {
        let codes = sets
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, (i + 1) as u16))
            .collect();
        LinkCodebook {
            from,
            dir,
            sets,
            codes,
        }
    }
    /// Number of distinct non-empty signals.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The distinct signals, canonical (sorted targets), ascending.
    pub fn sets(&self) -> &[PunchSet] {
        &self.sets
    }

    /// Wire width in bits: enough codewords for every set plus the idle
    /// state (code 0).
    pub fn width_bits(&self) -> u32 {
        usize::BITS - self.sets.len().leading_zeros()
    }

    /// The codeword assigned to `set` (0 is the idle wire), or `None` if the
    /// set is not expressible on this link — which the fabric's generation
    /// arbitration guarantees never happens. O(1) via the lookup table.
    pub fn encode(&self, set: &PunchSet) -> Option<u16> {
        if set.is_empty() {
            return Some(0);
        }
        self.codes.get(&set.canonical()).copied()
    }

    /// The target set for a codeword, or `None` if out of range.
    pub fn decode(&self, code: u16) -> Option<PunchSet> {
        if code == 0 {
            return Some(PunchSet::new());
        }
        self.sets.get(code as usize - 1).copied()
    }
}

/// All link codebooks of a topology for a given punch depth.
#[derive(Debug, Clone)]
pub struct Codebook {
    view: RouteView,
    hops: u16,
    /// Indexed `[router][direction]`; `None` at topology edges.
    links: Vec<[Option<LinkCodebook>; 4]>,
}

impl Codebook {
    /// Enumerates the codebooks for a topology/routing pair with punch
    /// depth `hops` by fixpoint closure. Accepts anything convertible to a
    /// [`RouteView`] — a bare [`punchsim_types::Mesh`] means XY routing,
    /// matching the paper. Cost is polynomial in network size and tiny in
    /// practice (an 8x8 mesh at H=3 converges in a few iterations).
    pub fn enumerate(view: impl Into<RouteView>, hops: u16) -> Self {
        let view: RouteView = view.into();
        let topo = view.topo;
        let n = topo.nodes();
        // Locally generated targets per (router, out-dir): every router
        // within `hops` whose route leaves through that direction.
        let gen: Vec<[Vec<NodeId>; 4]> = topo
            .iter_nodes()
            .map(|r| {
                let mut g: [Vec<NodeId>; 4] = Default::default();
                for t in topo.iter_nodes() {
                    if t == r || topo.distance(r, t) > hops {
                        continue;
                    }
                    let d = view.direction(r, t).expect("t != r");
                    g[d.index()].push(t);
                }
                g
            })
            .collect();
        // Reachable set closure per directed link.
        let mut sets: Vec<[BTreeSet<PunchSet>; 4]> = vec![Default::default(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for r in topo.iter_nodes() {
                for dir in Direction::ALL {
                    if topo.neighbor(r, dir).is_none() {
                        continue;
                    }
                    // Options arriving from each upstream link, filtered to
                    // the targets that continue through (r, dir).
                    let mut relay_options: Vec<Vec<PunchSet>> = Vec::new();
                    for in_dir in Direction::ALL {
                        let Some(up) = topo.neighbor(r, in_dir) else {
                            continue;
                        };
                        // The upstream link points from `up` toward `r`.
                        let up_link = &sets[up.index()][in_dir.opposite().index()];
                        let mut filtered: BTreeSet<PunchSet> = BTreeSet::new();
                        for s in up_link {
                            let mut f = PunchSet::new();
                            for &t in s.targets() {
                                if t == r {
                                    continue; // consumed at r
                                }
                                if view.direction(r, t) == Some(dir) {
                                    f.insert_normalized(view, r, t);
                                }
                            }
                            if !f.is_empty() {
                                filtered.insert(f.canonical());
                            }
                        }
                        if !filtered.is_empty() {
                            relay_options.push(filtered.into_iter().collect());
                        }
                    }
                    // Combine relays across upstream links (each may be
                    // absent), then with at most one local generation.
                    let mut combos: Vec<PunchSet> = vec![PunchSet::new()];
                    for opts in &relay_options {
                        let mut next = Vec::with_capacity(combos.len() * (opts.len() + 1));
                        for base in &combos {
                            next.push(*base);
                            for s in opts {
                                let mut merged = *base;
                                for &t in s.targets() {
                                    merged.insert_normalized(view, r, t);
                                }
                                next.push(merged);
                            }
                        }
                        combos = next;
                    }
                    let out = &mut sets[r.index()][dir.index()];
                    let before = out.len();
                    for base in &combos {
                        if !base.is_empty() {
                            out.insert(base.canonical());
                        }
                        for &g in &gen[r.index()][dir.index()] {
                            let mut merged = *base;
                            merged.insert_normalized(view, r, g);
                            out.insert(merged.canonical());
                        }
                    }
                    if out.len() != before {
                        changed = true;
                    }
                }
            }
        }
        let links = topo
            .iter_nodes()
            .map(|r| {
                let mut row: [Option<LinkCodebook>; 4] = Default::default();
                for dir in Direction::ALL {
                    if topo.neighbor(r, dir).is_none() {
                        continue;
                    }
                    row[dir.index()] = Some(LinkCodebook::new(
                        r,
                        dir,
                        sets[r.index()][dir.index()].iter().copied().collect(),
                    ));
                }
                row
            })
            .collect();
        Codebook { view, hops, links }
    }

    /// The topology/routing pair this codebook was enumerated for.
    pub fn view(&self) -> RouteView {
        self.view
    }

    /// The topology this codebook was enumerated for.
    pub fn topology(&self) -> Substrate {
        self.view.topo
    }

    /// The punch depth H.
    pub fn hops(&self) -> u16 {
        self.hops
    }

    /// The codebook of the link leaving `r` toward `dir`, or `None` at a
    /// mesh edge.
    pub fn link(&self, r: NodeId, dir: Direction) -> Option<&LinkCodebook> {
        self.links[r.index()][dir.index()].as_ref()
    }

    /// Iterates over all link codebooks.
    pub fn iter(&self) -> impl Iterator<Item = &LinkCodebook> {
        self.links.iter().flatten().flatten()
    }

    /// The widest X-direction link in bits.
    pub fn max_x_width(&self) -> u32 {
        self.iter()
            .filter(|l| l.dir.is_x())
            .map(LinkCodebook::width_bits)
            .max()
            .unwrap_or(0)
    }

    /// The widest Y-direction link in bits.
    pub fn max_y_width(&self) -> u32 {
        self.iter()
            .filter(|l| l.dir.is_y())
            .map(LinkCodebook::width_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total punch wiring bits leaving all routers (area-model input).
    pub fn total_wire_bits(&self) -> u64 {
        self.iter().map(|l| l.width_bits() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::{Mesh, RoutingKind};

    #[test]
    fn table1_x_plus_of_r27_has_22_sets_in_5_bits() {
        // The paper's Table 1: all distinctive target sets on the X+ link
        // of R27 in an 8x8 mesh with 3-hop punches.
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        let link = cb.link(NodeId(27), Direction::East).unwrap();
        assert_eq!(link.set_count(), 22);
        assert_eq!(link.width_bits(), 5);
    }

    #[test]
    fn table1_contains_paper_examples() {
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        let link = cb.link(NodeId(27), Direction::East).unwrap();
        let m = Mesh::new(8, 8);
        let set = |ids: &[u16]| {
            let mut s = PunchSet::new();
            for &i in ids {
                s.insert_normalized(m, NodeId(27), NodeId(i));
            }
            s.canonical()
        };
        // Entries 1, 8, 13, 19, 22 of Table 1.
        for ids in [
            &[28][..],
            &[29][..],
            &[21, 36][..],
            &[44, 29][..],
            &[29, 36][..],
        ] {
            let s = set(ids);
            assert!(link.encode(&s).is_some(), "set {s} must be in the codebook");
        }
        // Merging 27->21 with 26->29 yields plain {21} (entry 3): both are
        // encodable and 29 is implied.
        let merged = set(&[21, 29]);
        assert_eq!(merged, set(&[21]));
    }

    #[test]
    fn y_links_need_2_bits() {
        // §4.1 step 4: Y-direction punch signals have 3 distinctive sets
        // (straight-line targets only), so 2 bits suffice.
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        for l in cb.iter().filter(|l| l.dir.is_y()) {
            assert!(
                l.set_count() <= 3,
                "link {}->{} has {} sets",
                l.from,
                l.dir,
                l.set_count()
            );
            // Every Y set is a singleton after normalization.
            for s in l.sets() {
                assert_eq!(s.len(), 1, "Y set {s} must be a singleton");
            }
        }
        assert_eq!(cb.max_y_width(), 2);
    }

    #[test]
    fn x_links_fit_5_bits_at_h3() {
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        assert_eq!(cb.max_x_width(), 5);
        // No X set carries more than 2 explicit targets at H=3.
        for l in cb.iter().filter(|l| l.dir.is_x()) {
            for s in l.sets() {
                assert!(s.len() <= 2, "{s} on {}->{}", l.from, l.dir);
            }
        }
    }

    #[test]
    fn h4_x_links_fit_8_bits() {
        // §4.1 step 5: "for the case of 4-hop wakeup signal slack, the
        // width of punch signals is 8-bit for the X directions and 2-bit
        // for the Y directions". Our enumeration confirms the 8-bit X
        // claim exactly (145 sets on the worst link). Y links carry 4
        // straight-line distances plus the idle state = 5 codes, which
        // needs 3 bits; the paper's "2-bit" figure counts only the 4
        // distances (idle signalled separately). See EXPERIMENTS.md.
        let cb = Codebook::enumerate(Mesh::new(8, 8), 4);
        assert_eq!(cb.max_x_width(), 8);
        assert_eq!(cb.max_y_width(), 3);
        for l in cb.iter().filter(|l| l.dir.is_y()) {
            assert!(l.set_count() <= 4);
        }
    }

    #[test]
    fn yx_routing_transposes_the_paper_widths() {
        // Under YX routing the roles of the axes swap: Y links carry the
        // rich multi-target sets (5 bits at H=3 on 8x8) and X links carry
        // only straight-line singletons (2 bits). The derivation needs no
        // YX-specific code — the turn model alone produces the transpose
        // of Table 1.
        let cb = Codebook::enumerate((Mesh::new(8, 8), RoutingKind::Yx), 3);
        assert_eq!(cb.max_y_width(), 5);
        assert_eq!(cb.max_x_width(), 2);
        for l in cb.iter().filter(|l| l.dir.is_x()) {
            assert!(l.set_count() <= 3);
            for s in l.sets() {
                assert_eq!(s.len(), 1, "X set {s} must be a singleton under YX");
            }
        }
        // The transposed worst-case link mirrors R27's X+ link: same set
        // count on the Y+ link of the transposed coordinate.
        let link = cb.link(NodeId(27), Direction::South).unwrap();
        assert_eq!(link.set_count(), 22);
    }

    #[test]
    fn torus_links_enumerate_everywhere() {
        // On a torus every router has all four links (wraparound), and XY
        // routing with wrapped minimal deltas still converges to a finite
        // codebook. Width can only grow relative to the mesh since every
        // link sees at least the mesh's relay traffic patterns.
        use punchsim_types::Torus;
        let t = Substrate::Torus(Torus::new(5, 5));
        let cb = Codebook::enumerate(t, 2);
        for r in t.iter_nodes() {
            for dir in Direction::ALL {
                assert!(cb.link(r, dir).is_some(), "torus link {r}->{dir} missing");
            }
        }
        assert!(cb.max_x_width() >= 1);
        assert!(cb.max_y_width() >= 1);
    }

    #[test]
    fn h2_is_narrower_than_h3() {
        let cb2 = Codebook::enumerate(Mesh::new(8, 8), 2);
        let cb3 = Codebook::enumerate(Mesh::new(8, 8), 3);
        assert!(cb2.max_x_width() < cb3.max_x_width());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        let link = cb.link(NodeId(27), Direction::East).unwrap();
        for (i, s) in link.sets().iter().enumerate() {
            let code = link.encode(s).unwrap();
            assert_eq!(code as usize, i + 1);
            assert_eq!(link.decode(code).unwrap(), *s);
        }
        assert_eq!(link.decode(0).unwrap(), PunchSet::new());
        assert_eq!(link.encode(&PunchSet::new()).unwrap(), 0);
        assert!(link.decode(999).is_none());
    }

    #[test]
    fn encode_lut_matches_canonical_order_on_every_link() {
        // The lookup-table encoder must assign exactly the codes the old
        // binary-search encoder did: index + 1 in canonical set order.
        let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
        for l in cb.iter() {
            for (i, s) in l.sets().iter().enumerate() {
                assert_eq!(l.encode(s), Some((i + 1) as u16), "{s} on {}", l.from);
                assert_eq!(l.sets.binary_search(s).ok(), Some(i), "canonical order");
            }
            // Unknown sets still encode to None.
            let mut alien = PunchSet::new();
            alien.insert_normalized(cb.view(), NodeId(0), NodeId(1));
            if !l.sets().contains(&alien.canonical()) {
                assert_eq!(l.encode(&alien), None);
            }
        }
    }

    #[test]
    fn edge_links_are_absent() {
        let cb = Codebook::enumerate(Mesh::new(4, 4), 3);
        assert!(cb.link(NodeId(0), Direction::North).is_none());
        assert!(cb.link(NodeId(0), Direction::West).is_none());
        assert!(cb.link(NodeId(0), Direction::East).is_some());
    }
}
