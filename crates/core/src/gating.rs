//! Per-router power-gate state machines shared by every gating scheme.
//!
//! Since PR 9 the hot per-cycle entry points ([`GateArray::begin_cycle`]
//! and [`GateArray::advance_idle`]) are sub-O(routers): they sweep an
//! *active-set* bitset (routers that are `On` or `Waking`) instead of
//! the whole gate vector, and powered-off routers accrue their
//! off-cycle statistics lazily — a per-router accounting watermark plus
//! a global unit counter, folded into [`PgCounters`] on demand. In the
//! regime power gating exists for (almost every router asleep) a cycle
//! costs O(occupied) instead of O(n). The folded values are exactly
//! equal to what the eager implementation would report at every
//! observation point; that contract is pinned by the unit tests below,
//! by `tests/gating_lazy.rs` replaying random traces against
//! [`reference::EagerGateArray`], and end to end by the CI no-drift
//! gates.

use std::cell::UnsafeCell;

use punchsim_noc::{PgCounters, PowerState};
use punchsim_types::{Cycle, NodeId};

/// Internal state of one router's sleep switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Powered on; tracks consecutive idle cycles for the timeout filter.
    On { idle_cycles: u32 },
    /// Power-gated.
    Off,
    /// Waking; fully on once `ready_at` is reached.
    Waking { ready_at: Cycle },
}

/// A fixed-size bitset over router indices, swept word-at-a-time (the
/// same shape as the SoA kernel's occupancy index).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for (w, word) in s.words.iter_mut().enumerate() {
            let lo = w * 64;
            let bits = (len - lo).min(64);
            *word = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        s
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    #[cfg(test)]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Calls `f` for every set bit, ascending. `f` may mutate this set's
    /// bits freely: each word is snapshotted before its sweep, which is
    /// exactly the semantics the gate loops need (a gate cleared during
    /// the sweep is still visited once this cycle, like the eager full
    /// scan would).
    #[inline]
    fn for_each_set(this: &mut GateArray, mut f: impl FnMut(&mut GateArray, usize)) {
        for w in 0..this.active.words.len() {
            let mut word = this.active.words[w];
            while word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                f(this, i);
            }
        }
    }

    /// Calls `f` for every *clear* bit below `len`, ascending.
    fn for_each_clear(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let lo = w * 64;
            let bits = (self.len - lo).min(64);
            let mask = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
            let mut inv = !word & mask;
            while inv != 0 {
                let i = lo + inv.trailing_zeros() as usize;
                inv &= inv - 1;
                f(i);
            }
        }
    }
}

/// The lazily-folded statistics half of the array: the counters plus the
/// per-router watermark that says how much off-time is already folded
/// in. Kept behind an [`UnsafeCell`] so [`GateArray::counters`] can
/// materialize on demand through `&self` (see the safety discussion on
/// [`GateArray::materialize_shared`]).
#[derive(Debug, Clone)]
struct Acct {
    counters: PgCounters,
    /// For an `Off` router `i`: the [`GateArray::acct_units`] value
    /// through which `counters.off_cycles[i]` is folded; the router is
    /// owed `acct_units - off_mark[i]` more off-cycles. Meaningless (and
    /// unread) while the router is not `Off`.
    off_mark: Vec<u64>,
    /// `acct_units` value at the last full materialization; when equal
    /// to the live counter, every entry of `counters` is exact.
    folded_at: u64,
}

/// The array of sleep switches for all routers, with the wakeup/timeout
/// bookkeeping every scheme needs (Figure 1/2 of the paper).
///
/// Timing convention: [`GateArray::begin_cycle`] is called at the end of
/// network cycle `c` (inside the power manager's `tick`). State changes
/// requested during `tick(c)` become visible to the network at cycle `c+1`,
/// modelling the one-cycle latency of the power-gating controller.
///
/// # Laziness invariants
///
/// - `active` bit `i` is set iff `gates[i]` is `On` or `Waking`; `Off`
///   routers are swept by no per-cycle path.
/// - `acct_units` advances by 1 per [`GateArray::begin_cycle`] call and
///   by the span length per [`GateArray::advance_quiet`] call — the two
///   ways the eager implementation would have credited an off router.
/// - An `Off` router `i` is owed `acct_units - off_mark[i]` off-cycles
///   beyond `counters.off_cycles[i]`; every transition out of `Off`
///   folds that debt eagerly, and [`GateArray::counters`] folds all
///   remaining debt before returning.
///
/// Gate *states* (and therefore [`GateArray::state`],
/// [`GateArray::fill_availability`], [`GateArray::next_event_at`] and
/// [`GateArray::encode_state`]) are never deferred — only the off-cycle
/// statistics are.
pub struct GateArray {
    gates: Vec<Gate>,
    wakeup_latency: Cycle,
    idle_timeout: u32,
    /// Routers that are `On` or `Waking` — the only ones the per-cycle
    /// sweeps visit.
    active: BitSet,
    /// Lazy off-cycle accounting units elapsed (see the type-level
    /// invariants).
    acct_units: u64,
    acct: UnsafeCell<Acct>,
}

impl GateArray {
    /// Creates `n` routers, all powered on.
    pub fn new(n: usize, wakeup_latency: u32, idle_timeout: u32) -> Self {
        GateArray {
            gates: vec![Gate::On { idle_cycles: 0 }; n],
            wakeup_latency: wakeup_latency as Cycle,
            idle_timeout,
            active: BitSet::full(n),
            acct_units: 0,
            acct: UnsafeCell::new(Acct {
                counters: PgCounters::new(n),
                off_mark: vec![0; n],
                folded_at: 0,
            }),
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when managing zero routers.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Public power state of router `r`.
    pub fn state(&self, r: NodeId) -> PowerState {
        match self.gates[r.index()] {
            Gate::On { .. } => PowerState::On,
            Gate::Off => PowerState::Off,
            Gate::Waking { ready_at } => PowerState::WakingUp { ready_at },
        }
    }

    /// Single-pass bulk availability snapshot for the sharded SoA tick
    /// (see [`punchsim_noc::PowerManager::fill_availability`]): one walk
    /// over the gate vector instead of three virtual dispatches per
    /// router. Values are exactly what per-router [`GateArray::state`]
    /// queries would yield.
    pub fn fill_availability(
        &self,
        arrival_by: Cycle,
        local_by: Cycle,
        arrival: &mut [bool],
        local: &mut [bool],
        off: &mut [bool],
    ) {
        for (i, g) in self.gates.iter().enumerate() {
            let (a, l, o) = match *g {
                Gate::On { .. } => (true, true, false),
                Gate::Off => (false, false, true),
                Gate::Waking { ready_at } => (ready_at <= arrival_by, ready_at <= local_by, false),
            };
            arrival[i] = a;
            local[i] = l;
            off[i] = o;
        }
    }

    /// Activity counters, folded up to date: values are exactly what the
    /// eager implementation ([`reference::EagerGateArray`]) would hold
    /// after the same call sequence.
    pub fn counters(&self) -> &PgCounters {
        self.materialize_shared();
        // SAFETY: see `materialize_shared` — after it returns, no path
        // reachable through `&self` mutates the accounting until a
        // `&mut self` method runs, which ends this borrow first.
        unsafe { &(*self.acct.get()).counters }
    }

    /// Folds every off router's owed off-cycles into the counters.
    ///
    /// # Safety argument (why `&self` mutation here is sound)
    ///
    /// The only mutation through `&self` in this type happens below, and
    /// only while `folded_at != acct_units`. `acct_units` advances
    /// exclusively in `&mut self` methods, and this fold ends with
    /// `folded_at == acct_units`. Therefore, while any `&`-reference
    /// returned by [`GateArray::counters`] is alive (pinning `&self`),
    /// every further `counters` call sees `folded_at == acct_units` and
    /// returns without touching the accounting — no mutation can overlap
    /// an outstanding shared borrow. `UnsafeCell` makes the type `!Sync`,
    /// so no cross-thread interleaving exists either.
    fn materialize_shared(&self) {
        // SAFETY: per the argument above, this exclusive access never
        // overlaps another reference into the cell.
        let acct = unsafe { &mut *self.acct.get() };
        if acct.folded_at == self.acct_units {
            return;
        }
        let units = self.acct_units;
        let counters = &mut acct.counters;
        let off_mark = &mut acct.off_mark;
        self.active.for_each_clear(|i| {
            let owed = units - off_mark[i];
            if owed > 0 {
                counters.off_cycles[i] += owed;
                off_mark[i] = units;
            }
        });
        acct.folded_at = units;
    }

    /// Folds router `i`'s owed off-cycles (called on every transition
    /// out of `Off`, so the debt never survives a state change).
    fn fold_one(&mut self, i: usize) {
        let units = self.acct_units;
        let acct = self.acct.get_mut();
        let owed = units - acct.off_mark[i];
        if owed > 0 {
            acct.counters.off_cycles[i] += owed;
            acct.off_mark[i] = units;
        }
    }

    /// Resets counters (end of warm-up); states are preserved. Off
    /// routers restart their lazy accounting from zero debt.
    pub fn reset_counters(&mut self) {
        let units = self.acct_units;
        let acct = self.acct.get_mut();
        acct.counters.reset();
        for m in &mut acct.off_mark {
            *m = units;
        }
        acct.folded_at = units;
    }

    /// Extra sideband-activity counter hooks for the schemes.
    ///
    /// This handle is for *writing* scheme-owned scalars (punch hops, WU
    /// assertions, escalations); the per-router `off_cycles` plane may be
    /// stale through it, because folding it here every tick would undo
    /// the lazy accounting. Read through [`GateArray::counters`], which
    /// folds first.
    pub fn counters_mut(&mut self) -> &mut PgCounters {
        &mut self.acct.get_mut().counters
    }

    /// Accounts the state each router held during `cycle` and promotes
    /// routers whose wakeup completes before the next cycle. Call exactly
    /// once at the start of every power-manager tick, before processing
    /// events.
    ///
    /// Cost: O(active routers) — powered-off routers are credited lazily
    /// via the accounting watermark.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        self.acct_units += 1;
        BitSet::for_each_set(self, |this, i| {
            if let Gate::Waking { ready_at } = this.gates[i] {
                this.acct.get_mut().counters.waking_cycles[i] += 1;
                if cycle + 1 >= ready_at {
                    this.gates[i] = Gate::On { idle_cycles: 0 };
                }
            }
        });
    }

    /// Requests a wakeup of router `r` during `cycle`: an off router starts
    /// its wakeup transient and is fully on at `cycle + wakeup_latency`
    /// (the wakeup signal arrived *during* `cycle`, so the transient spans
    /// cycles `cycle..cycle + wakeup_latency`, hardware-style). On or
    /// already-waking routers are unaffected (but an on router's idle timer
    /// is reset).
    pub fn request_wake(&mut self, r: NodeId, cycle: Cycle) {
        let i = r.index();
        match self.gates[i] {
            Gate::Off => {
                self.fold_one(i);
                self.acct.get_mut().counters.wake_events[i] += 1;
                self.gates[i] = Gate::Waking {
                    ready_at: cycle + self.wakeup_latency,
                };
                self.active.set(i);
            }
            Gate::On { .. } => self.gates[i] = Gate::On { idle_cycles: 0 },
            // The level signal keeps retrying while the transient completes.
            Gate::Waking { .. } => self.acct.get_mut().counters.wu_retries += 1,
        }
    }

    /// Escalated wakeup from the network watchdog: unconditionally starts
    /// (or continues) the wakeup of router `r`, overriding whatever kept its
    /// sleep gate asserted. Counted separately from normal wake events so a
    /// non-zero [`PgCounters::escalations`] flags that the safety net fired.
    pub fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.acct.get_mut().counters.record_escalation(r);
        if self.gates[r.index()] == Gate::Off {
            let i = r.index();
            self.fold_one(i);
            self.acct.get_mut().counters.wake_events[i] += 1;
            self.gates[i] = Gate::Waking {
                ready_at: cycle + self.wakeup_latency,
            };
            self.active.set(i);
        }
    }

    /// Marks router `r` as "needed soon": resets the idle timer so the
    /// timeout filter will not power it off this cycle.
    pub fn keep_awake(&mut self, r: NodeId) {
        if let Gate::On { .. } = self.gates[r.index()] {
            self.gates[r.index()] = Gate::On { idle_cycles: 0 };
        }
    }

    /// Earliest cycle `>= now` at which any gate changes state under quiet
    /// all-idle ticks: a waking router's promotion tick, or an on router's
    /// sleep tick (its idle timeout, deferred past the scheme's
    /// `sleep_floor(i)` — the first cycle at which `may_sleep(i)` would hold).
    /// `None` when every gate is already off, i.e. the array is a fixed
    /// point apart from its off-cycle accounting. O(active routers).
    pub fn next_event_at(
        &self,
        now: Cycle,
        mut sleep_floor: impl FnMut(usize) -> Cycle,
    ) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for (w, &word) in self.active.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let at = match self.gates[i] {
                    Gate::Off => continue,
                    Gate::Waking { ready_at } => now.max(ready_at.saturating_sub(1)),
                    Gate::On { idle_cycles } => {
                        let timeout_at = now
                            + self
                                .idle_timeout
                                .saturating_sub(idle_cycles.saturating_add(1))
                                as Cycle;
                        timeout_at.max(sleep_floor(i))
                    }
                };
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        }
        horizon
    }

    /// Closed-form replay of the quiet span `[from, to)`: for every cycle
    /// `c` in the span, behaves exactly like
    /// `begin_cycle(c); advance_idle(&all_true, |i| c >= sleep_floor(i))`
    /// but in O(active routers) total instead of O(routers × span) —
    /// off routers' accounting advances through the shared unit counter
    /// without being visited. `sleep_floor` is the scheme's sleep veto
    /// expressed as a cycle: router `i` may not sleep before cycle
    /// `sleep_floor(i)` (0 for unconditional sleeping).
    ///
    /// The per-cycle equivalence is pinned by `quiet_advance_matches_loop`
    /// below and, end to end, by `tests/differential.rs`.
    pub fn advance_quiet(
        &mut self,
        from: Cycle,
        to: Cycle,
        mut sleep_floor: impl FnMut(usize) -> Cycle,
    ) {
        if to <= from {
            return;
        }
        let span = to - from;
        // Off routers owe `span` more off-cycles after this call — the
        // unit counter advances, their watermarks stay put.
        self.acct_units += span;
        let units = self.acct_units;
        let timeout = self.idle_timeout;
        BitSet::for_each_set(self, |this, i| {
            // Resolve a waking gate first: it accrues waking cycles up to and
            // including its promotion tick, then evolves as On from there.
            let acct = this.acct.get_mut();
            let (on_from, ic0) = match this.gates[i] {
                Gate::Off => return,
                Gate::Waking { ready_at } => {
                    let promo = from.max(ready_at.saturating_sub(1));
                    if promo >= to {
                        acct.counters.waking_cycles[i] += span;
                        return;
                    }
                    acct.counters.waking_cycles[i] += promo - from + 1;
                    (promo, 0u32)
                }
                Gate::On { idle_cycles } => (from, idle_cycles),
            };
            // During tick `c >= on_from` the idle counter reads
            // `ic0 + (c - on_from) + 1`, so the timeout filter first passes
            // at `timeout_at`; the sleep lands at the later of that and the
            // scheme's floor.
            let timeout_at = on_from + timeout.saturating_sub(ic0.saturating_add(1)) as Cycle;
            let sleep_at = timeout_at.max(sleep_floor(i));
            if sleep_at < to {
                acct.counters.sleep_events[i] += 1;
                // The eager form credits `(to - 1) - sleep_at` off-cycles
                // inside the span; express the same amount as lazy debt so
                // a follow-up fold is exact.
                acct.off_mark[i] = units - ((to - 1) - sleep_at);
                this.gates[i] = Gate::Off;
                this.active.clear(i);
            } else {
                let add = (to - on_from).min(u32::MAX as Cycle) as u32;
                this.gates[i] = Gate::On {
                    idle_cycles: ic0.saturating_add(add),
                };
            }
        });
    }

    /// Appends the canonical snapshot encoding of every gate (see
    /// `punchsim_noc::snapshot`): the state tag plus its dynamic payload —
    /// `On` carries the idle counter (bounded by the timeout, past which the
    /// gate sleeps), `Waking` carries the remaining transient rebased
    /// against `now`. Counters are statistics and excluded.
    pub fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) {
        use punchsim_noc::snapshot::{put_u32, put_u64, put_u8};
        for g in &self.gates {
            match *g {
                Gate::On { idle_cycles } => {
                    put_u8(out, 0);
                    // The timeout filter compares against `idle_timeout`;
                    // larger values behave identically, so saturate to keep
                    // long-idle states from encoding distinctly.
                    put_u32(out, idle_cycles.min(self.idle_timeout));
                }
                Gate::Off => {
                    put_u8(out, 1);
                    put_u32(out, 0);
                }
                Gate::Waking { ready_at } => {
                    put_u8(out, 2);
                    put_u64(out, ready_at.saturating_sub(now));
                }
            }
        }
    }

    /// Advances idle timers using the network's per-router idleness and
    /// powers off routers that pass the timeout filter and the
    /// scheme-specific `may_sleep` predicate. Call once per tick, after
    /// event processing. O(active routers): off and waking gates are
    /// skipped, exactly like the eager full scan would no-op them, and
    /// `may_sleep` is consulted for the same routers in the same order.
    pub fn advance_idle(&mut self, idle: &[bool], mut may_sleep: impl FnMut(usize) -> bool) {
        let timeout = self.idle_timeout;
        BitSet::for_each_set(self, |this, i| {
            if let Gate::On { idle_cycles } = this.gates[i] {
                if idle[i] {
                    let ic = idle_cycles + 1;
                    if ic >= timeout && may_sleep(i) {
                        let acct = this.acct.get_mut();
                        acct.counters.sleep_events[i] += 1;
                        // Freshly asleep: zero debt as of now.
                        acct.off_mark[i] = this.acct_units;
                        this.gates[i] = Gate::Off;
                        this.active.clear(i);
                    } else {
                        this.gates[i] = Gate::On { idle_cycles: ic };
                    }
                } else {
                    this.gates[i] = Gate::On { idle_cycles: 0 };
                }
            }
        });
    }
}

impl Clone for GateArray {
    fn clone(&self) -> Self {
        // SAFETY: shared read only; per `materialize_shared`'s argument no
        // mutation of the cell can overlap it.
        let acct = unsafe { (*self.acct.get()).clone() };
        GateArray {
            gates: self.gates.clone(),
            wakeup_latency: self.wakeup_latency,
            idle_timeout: self.idle_timeout,
            active: self.active.clone(),
            acct_units: self.acct_units,
            acct: UnsafeCell::new(acct),
        }
    }
}

impl std::fmt::Debug for GateArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // No materialization here: Debug may run while a `counters()`
        // borrow is alive, so it must stay read-only on the cell.
        f.debug_struct("GateArray")
            .field("gates", &self.gates)
            .field("wakeup_latency", &self.wakeup_latency)
            .field("idle_timeout", &self.idle_timeout)
            .field("acct_units", &self.acct_units)
            .finish_non_exhaustive()
    }
}

pub mod reference {
    //! The eager reference implementation of the gate array: a full
    //! O(routers) sweep per cycle with counters updated in place — the
    //! executable specification the lazy [`super::GateArray`] is
    //! differentially tested against (`tests/gating_lazy.rs`), in the
    //! same spirit as the struct-vs-SoA and naive-vs-fast tick oracles.

    use super::*;

    /// Internal state of one router's sleep switch (eager twin).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum EGate {
        On { idle_cycles: u32 },
        Off,
        Waking { ready_at: Cycle },
    }

    /// Eagerly-accounted gate array; same observable API subset as
    /// [`super::GateArray`], O(routers) per cycle by construction.
    #[derive(Debug, Clone)]
    pub struct EagerGateArray {
        gates: Vec<EGate>,
        wakeup_latency: Cycle,
        idle_timeout: u32,
        counters: PgCounters,
    }

    impl EagerGateArray {
        /// Creates `n` routers, all powered on.
        pub fn new(n: usize, wakeup_latency: u32, idle_timeout: u32) -> Self {
            EagerGateArray {
                gates: vec![EGate::On { idle_cycles: 0 }; n],
                wakeup_latency: wakeup_latency as Cycle,
                idle_timeout,
                counters: PgCounters::new(n),
            }
        }

        /// Public power state of router `r`.
        pub fn state(&self, r: NodeId) -> PowerState {
            match self.gates[r.index()] {
                EGate::On { .. } => PowerState::On,
                EGate::Off => PowerState::Off,
                EGate::Waking { ready_at } => PowerState::WakingUp { ready_at },
            }
        }

        /// Activity counters (always exact — every cycle is accounted in
        /// place).
        pub fn counters(&self) -> &PgCounters {
            &self.counters
        }

        /// Eager per-cycle accounting sweep over every router.
        pub fn begin_cycle(&mut self, cycle: Cycle) {
            for (i, g) in self.gates.iter_mut().enumerate() {
                match *g {
                    EGate::Off => self.counters.off_cycles[i] += 1,
                    EGate::Waking { ready_at } => {
                        self.counters.waking_cycles[i] += 1;
                        if cycle + 1 >= ready_at {
                            *g = EGate::On { idle_cycles: 0 };
                        }
                    }
                    EGate::On { .. } => {}
                }
            }
        }

        /// See [`super::GateArray::request_wake`].
        pub fn request_wake(&mut self, r: NodeId, cycle: Cycle) {
            let i = r.index();
            match self.gates[i] {
                EGate::Off => {
                    self.counters.wake_events[i] += 1;
                    self.gates[i] = EGate::Waking {
                        ready_at: cycle + self.wakeup_latency,
                    };
                }
                EGate::On { .. } => self.gates[i] = EGate::On { idle_cycles: 0 },
                EGate::Waking { .. } => self.counters.wu_retries += 1,
            }
        }

        /// See [`super::GateArray::force_wake`].
        pub fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
            self.counters.record_escalation(r);
            if self.gates[r.index()] == EGate::Off {
                let i = r.index();
                self.counters.wake_events[i] += 1;
                self.gates[i] = EGate::Waking {
                    ready_at: cycle + self.wakeup_latency,
                };
            }
        }

        /// See [`super::GateArray::keep_awake`].
        pub fn keep_awake(&mut self, r: NodeId) {
            if let EGate::On { .. } = self.gates[r.index()] {
                self.gates[r.index()] = EGate::On { idle_cycles: 0 };
            }
        }

        /// See [`super::GateArray::reset_counters`].
        pub fn reset_counters(&mut self) {
            self.counters.reset();
        }

        /// Eager full-scan sleep sweep over every router.
        pub fn advance_idle(&mut self, idle: &[bool], mut may_sleep: impl FnMut(usize) -> bool) {
            for (i, g) in self.gates.iter_mut().enumerate() {
                if let EGate::On { idle_cycles } = *g {
                    if idle[i] {
                        let ic = idle_cycles + 1;
                        if ic >= self.idle_timeout && may_sleep(i) {
                            self.counters.sleep_events[i] += 1;
                            *g = EGate::Off;
                        } else {
                            *g = EGate::On { idle_cycles: ic };
                        }
                    } else {
                        *g = EGate::On { idle_cycles: 0 };
                    }
                }
            }
        }

        /// Per-cycle loop equivalent of [`super::GateArray::advance_quiet`]
        /// (the eager spec has no closed form — it just replays the span).
        pub fn advance_quiet(
            &mut self,
            from: Cycle,
            to: Cycle,
            mut sleep_floor: impl FnMut(usize) -> Cycle,
        ) {
            let all_idle = vec![true; self.gates.len()];
            for c in from..to {
                self.begin_cycle(c);
                self.advance_idle(&all_idle, |i| c >= sleep_floor(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_after_timeout_idle_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        let idle = [true];
        for c in 0..3 {
            g.begin_cycle(c);
            g.advance_idle(&idle, |_| true);
            assert_eq!(g.state(NodeId(0)), PowerState::On, "cycle {c}");
        }
        g.begin_cycle(3);
        g.advance_idle(&idle, |_| true);
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        assert_eq!(g.counters().sleep_events[0], 1);
    }

    #[test]
    fn activity_resets_idle_timer() {
        let mut g = GateArray::new(1, 8, 4);
        for c in 0..10 {
            g.begin_cycle(c);
            // Busy every third cycle: never reaches 4 consecutive idles.
            g.advance_idle(&[c % 3 != 0], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn wakeup_takes_wakeup_latency_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        // Put it to sleep.
        for c in 0..4 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        // WU asserted during cycle 10.
        g.begin_cycle(10);
        g.request_wake(NodeId(0), 10);
        g.advance_idle(&[true], |_| true);
        assert_eq!(
            g.state(NodeId(0)),
            PowerState::WakingUp { ready_at: 18 },
            "the transient spans cycles 10..18; fully on at 10 + 8"
        );
        for c in 11..=17 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // After tick(17) the router is on for cycle 18.
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.counters().wake_events[0], 1);
        // Cycles 11..=17 were accounted as waking (the arrival cycle 10 was
        // already counted as off).
        assert_eq!(g.counters().total_waking_cycles(), 7);
    }

    #[test]
    fn keep_awake_blocks_sleep() {
        let mut g = GateArray::new(1, 8, 2);
        for c in 0..20 {
            g.begin_cycle(c);
            g.keep_awake(NodeId(0)); // e.g. a punch forewarning each cycle
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn may_sleep_predicate_vetoes() {
        let mut g = GateArray::new(2, 8, 1);
        for c in 0..5 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true], |i| i == 1);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.state(NodeId(1)), PowerState::Off);
    }

    #[test]
    fn off_cycles_accumulate() {
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..10 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // Slept after tick(0) (1 idle cycle >= timeout 1): off during 1..=9.
        assert_eq!(g.counters().total_off_cycles(), 9);
    }

    /// Lazy off-cycle debt folds identically no matter how observation
    /// points interleave with the cycle loop — including back-to-back
    /// `counters()` calls with no accounting progress in between.
    #[test]
    fn lazy_folding_is_observation_point_independent() {
        let mut sometimes = GateArray::new(3, 8, 1);
        let mut once = GateArray::new(3, 8, 1);
        let idle = [true, true, true];
        for c in 0..50 {
            sometimes.begin_cycle(c);
            sometimes.advance_idle(&idle, |i| i != 2);
            once.begin_cycle(c);
            once.advance_idle(&idle, |i| i != 2);
            if c % 7 == 0 {
                // Observing mid-run must not perturb later accounting.
                let a = sometimes.counters().total_off_cycles();
                let b = sometimes.counters().total_off_cycles();
                assert_eq!(a, b, "repeated observation changed the counters");
            }
        }
        assert_eq!(sometimes.counters(), once.counters());
        // Routers 0/1 slept after tick(0), router 2 was vetoed forever.
        assert_eq!(sometimes.counters().off_cycles, vec![49, 49, 0]);
    }

    /// `reset_counters` also cancels the lazy debt: off-time before the
    /// reset must never leak into the measured window.
    #[test]
    fn reset_counters_cancels_off_debt() {
        let mut g = GateArray::new(2, 8, 1);
        for c in 0..20 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true], |_| true);
        }
        g.reset_counters();
        assert_eq!(g.counters().total_off_cycles(), 0);
        for c in 20..25 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true], |_| true);
        }
        // Both routers off for the 5 post-reset cycles only.
        assert_eq!(g.counters().total_off_cycles(), 10);
    }

    /// Replays the quiet span per-cycle and via the closed form and demands
    /// bit-identical gates *and* counters, over randomized initial states,
    /// sleep floors and span lengths. This is the unit-level half of the
    /// fast-forward equivalence argument (the end-to-end half lives in
    /// `tests/differential.rs`).
    #[test]
    fn quiet_advance_matches_loop() {
        use punchsim_types::SimRng;
        let mut rng = SimRng::seed_from_u64(0x9A7E5);
        for trial in 0..200 {
            let n = 1 + (rng.next_u64() % 6) as usize;
            let latency = 1 + (rng.next_u64() % 12) as u32;
            let timeout = (rng.next_u64() % 6) as u32;
            let from: Cycle = rng.next_u64() % 50;
            let span: Cycle = rng.next_u64() % 40;
            let mut slow = GateArray::new(n, latency, timeout);
            // Randomize initial gate states through the public API.
            for i in 0..n {
                match rng.next_u64() % 3 {
                    0 => {} // stays On { idle_cycles: 0 }
                    1 => {
                        // Drive it Off: enough all-idle ticks starting well
                        // before `from`.
                        for c in 0..(timeout as Cycle + 1) {
                            slow.begin_cycle(c);
                            let idle: Vec<bool> = (0..n).map(|j| j == i).collect();
                            slow.advance_idle(&idle, |j| j == i);
                        }
                    }
                    _ => {
                        for c in 0..(timeout as Cycle + 1) {
                            slow.begin_cycle(c);
                            let idle: Vec<bool> = (0..n).map(|j| j == i).collect();
                            slow.advance_idle(&idle, |j| j == i);
                        }
                        slow.request_wake(
                            NodeId(i as u16),
                            from.saturating_sub(rng.next_u64() % 4),
                        );
                    }
                }
            }
            let floors: Vec<Cycle> = (0..n).map(|_| rng.next_u64() % 80).collect();
            let mut fast = slow.clone();
            let all_idle = vec![true; n];
            for c in from..from + span {
                slow.begin_cycle(c);
                slow.advance_idle(&all_idle, |i| c >= floors[i]);
            }
            fast.advance_quiet(from, from + span, |i| floors[i]);
            assert_eq!(slow.gates, fast.gates, "trial {trial} gates diverged");
            assert_eq!(
                slow.active, fast.active,
                "trial {trial} active set diverged"
            );
            assert_eq!(
                slow.counters(),
                fast.counters(),
                "trial {trial} counters diverged"
            );
        }
    }

    #[test]
    fn next_event_at_predicts_first_transition() {
        // One on router, timeout 4, floor 10: the timeout passes at tick 3
        // but the floor defers the sleep to tick 10.
        let g = GateArray::new(1, 8, 4);
        assert_eq!(g.next_event_at(0, |_| 10), Some(10));
        assert_eq!(g.next_event_at(0, |_| 0), Some(3));
        // A waking router promotes at ready_at - 1.
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..2 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        g.request_wake(NodeId(0), 10);
        assert_eq!(g.next_event_at(10, |_| 0), Some(17));
        // An off router is a fixed point.
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..2 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.next_event_at(5, |_| 0), None);
    }

    /// The active set must mirror gate states exactly through every
    /// transition path (sleep, wake, force-wake, quiet spans).
    #[test]
    fn active_set_tracks_gate_states() {
        let mut g = GateArray::new(4, 3, 1);
        for c in 0..4 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true, false, true], |i| i != 3);
        }
        // Routers 0/1 slept; 2 stayed busy; 3 was vetoed.
        for i in 0..4 {
            let on = !matches!(g.state(NodeId(i as u16)), PowerState::Off);
            assert_eq!(g.active.get(i), on, "router {i}");
        }
        g.request_wake(NodeId(0), 10);
        assert!(g.active.get(0));
        g.force_wake(NodeId(1), 10);
        assert!(g.active.get(1));
        g.advance_quiet(11, 40, |_| 0);
        for i in 0..4 {
            let on = !matches!(g.state(NodeId(i as u16)), PowerState::Off);
            assert_eq!(g.active.get(i), on, "router {i} after quiet span");
        }
    }
}
