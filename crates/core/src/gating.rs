//! Per-router power-gate state machines shared by every gating scheme.

use punchsim_noc::{PgCounters, PowerState};
use punchsim_types::{Cycle, NodeId};

/// Internal state of one router's sleep switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Powered on; tracks consecutive idle cycles for the timeout filter.
    On { idle_cycles: u32 },
    /// Power-gated.
    Off,
    /// Waking; fully on once `ready_at` is reached.
    Waking { ready_at: Cycle },
}

/// The array of sleep switches for all routers, with the wakeup/timeout
/// bookkeeping every scheme needs (Figure 1/2 of the paper).
///
/// Timing convention: [`GateArray::begin_cycle`] is called at the end of
/// network cycle `c` (inside the power manager's `tick`). State changes
/// requested during `tick(c)` become visible to the network at cycle `c+1`,
/// modelling the one-cycle latency of the power-gating controller.
#[derive(Debug, Clone)]
pub struct GateArray {
    gates: Vec<Gate>,
    wakeup_latency: Cycle,
    idle_timeout: u32,
    counters: PgCounters,
}

impl GateArray {
    /// Creates `n` routers, all powered on.
    pub fn new(n: usize, wakeup_latency: u32, idle_timeout: u32) -> Self {
        GateArray {
            gates: vec![Gate::On { idle_cycles: 0 }; n],
            wakeup_latency: wakeup_latency as Cycle,
            idle_timeout,
            counters: PgCounters::new(n),
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when managing zero routers.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Public power state of router `r`.
    pub fn state(&self, r: NodeId) -> PowerState {
        match self.gates[r.index()] {
            Gate::On { .. } => PowerState::On,
            Gate::Off => PowerState::Off,
            Gate::Waking { ready_at } => PowerState::WakingUp { ready_at },
        }
    }

    /// Activity counters.
    pub fn counters(&self) -> &PgCounters {
        &self.counters
    }

    /// Resets counters (end of warm-up); states are preserved.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Extra sideband-activity counter hooks for the schemes.
    pub fn counters_mut(&mut self) -> &mut PgCounters {
        &mut self.counters
    }

    /// Accounts the state each router held during `cycle` and promotes
    /// routers whose wakeup completes before the next cycle. Call exactly
    /// once at the start of every power-manager tick, before processing
    /// events.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        for (i, g) in self.gates.iter_mut().enumerate() {
            match *g {
                Gate::Off => self.counters.off_cycles[i] += 1,
                Gate::Waking { ready_at } => {
                    self.counters.waking_cycles[i] += 1;
                    if cycle + 1 >= ready_at {
                        *g = Gate::On { idle_cycles: 0 };
                    }
                }
                Gate::On { .. } => {}
            }
        }
    }

    /// Requests a wakeup of router `r` during `cycle`: an off router starts
    /// its wakeup transient and is fully on at `cycle + wakeup_latency`
    /// (the wakeup signal arrived *during* `cycle`, so the transient spans
    /// cycles `cycle..cycle + wakeup_latency`, hardware-style). On or
    /// already-waking routers are unaffected (but an on router's idle timer
    /// is reset).
    pub fn request_wake(&mut self, r: NodeId, cycle: Cycle) {
        let i = r.index();
        match self.gates[i] {
            Gate::Off => {
                self.counters.wake_events[i] += 1;
                self.gates[i] = Gate::Waking {
                    ready_at: cycle + self.wakeup_latency,
                };
            }
            Gate::On { .. } => self.gates[i] = Gate::On { idle_cycles: 0 },
            // The level signal keeps retrying while the transient completes.
            Gate::Waking { .. } => self.counters.wu_retries += 1,
        }
    }

    /// Escalated wakeup from the network watchdog: unconditionally starts
    /// (or continues) the wakeup of router `r`, overriding whatever kept its
    /// sleep gate asserted. Counted separately from normal wake events so a
    /// non-zero [`PgCounters::escalations`] flags that the safety net fired.
    pub fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.counters.escalations += 1;
        if self.gates[r.index()] == Gate::Off {
            let i = r.index();
            self.counters.wake_events[i] += 1;
            self.gates[i] = Gate::Waking {
                ready_at: cycle + self.wakeup_latency,
            };
        }
    }

    /// Marks router `r` as "needed soon": resets the idle timer so the
    /// timeout filter will not power it off this cycle.
    pub fn keep_awake(&mut self, r: NodeId) {
        if let Gate::On { .. } = self.gates[r.index()] {
            self.gates[r.index()] = Gate::On { idle_cycles: 0 };
        }
    }

    /// Advances idle timers using the network's per-router idleness and
    /// powers off routers that pass the timeout filter and the
    /// scheme-specific `may_sleep` predicate. Call once per tick, after
    /// event processing.
    pub fn advance_idle(&mut self, idle: &[bool], mut may_sleep: impl FnMut(usize) -> bool) {
        for (i, g) in self.gates.iter_mut().enumerate() {
            if let Gate::On { idle_cycles } = *g {
                if idle[i] {
                    let ic = idle_cycles + 1;
                    if ic >= self.idle_timeout && may_sleep(i) {
                        self.counters.sleep_events[i] += 1;
                        *g = Gate::Off;
                    } else {
                        *g = Gate::On { idle_cycles: ic };
                    }
                } else {
                    *g = Gate::On { idle_cycles: 0 };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_after_timeout_idle_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        let idle = [true];
        for c in 0..3 {
            g.begin_cycle(c);
            g.advance_idle(&idle, |_| true);
            assert_eq!(g.state(NodeId(0)), PowerState::On, "cycle {c}");
        }
        g.begin_cycle(3);
        g.advance_idle(&idle, |_| true);
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        assert_eq!(g.counters().sleep_events[0], 1);
    }

    #[test]
    fn activity_resets_idle_timer() {
        let mut g = GateArray::new(1, 8, 4);
        for c in 0..10 {
            g.begin_cycle(c);
            // Busy every third cycle: never reaches 4 consecutive idles.
            g.advance_idle(&[c % 3 != 0], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn wakeup_takes_wakeup_latency_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        // Put it to sleep.
        for c in 0..4 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        // WU asserted during cycle 10.
        g.begin_cycle(10);
        g.request_wake(NodeId(0), 10);
        g.advance_idle(&[true], |_| true);
        assert_eq!(
            g.state(NodeId(0)),
            PowerState::WakingUp { ready_at: 18 },
            "the transient spans cycles 10..18; fully on at 10 + 8"
        );
        for c in 11..=17 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // After tick(17) the router is on for cycle 18.
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.counters().wake_events[0], 1);
        // Cycles 11..=17 were accounted as waking (the arrival cycle 10 was
        // already counted as off).
        assert_eq!(g.counters().total_waking_cycles(), 7);
    }

    #[test]
    fn keep_awake_blocks_sleep() {
        let mut g = GateArray::new(1, 8, 2);
        for c in 0..20 {
            g.begin_cycle(c);
            g.keep_awake(NodeId(0)); // e.g. a punch forewarning each cycle
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn may_sleep_predicate_vetoes() {
        let mut g = GateArray::new(2, 8, 1);
        for c in 0..5 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true], |i| i == 1);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.state(NodeId(1)), PowerState::Off);
    }

    #[test]
    fn off_cycles_accumulate() {
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..10 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // Slept after tick(0) (1 idle cycle >= timeout 1): off during 1..=9.
        assert_eq!(g.counters().total_off_cycles(), 9);
    }
}
