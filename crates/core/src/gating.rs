//! Per-router power-gate state machines shared by every gating scheme.

use punchsim_noc::{PgCounters, PowerState};
use punchsim_types::{Cycle, NodeId};

/// Internal state of one router's sleep switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Powered on; tracks consecutive idle cycles for the timeout filter.
    On { idle_cycles: u32 },
    /// Power-gated.
    Off,
    /// Waking; fully on once `ready_at` is reached.
    Waking { ready_at: Cycle },
}

/// The array of sleep switches for all routers, with the wakeup/timeout
/// bookkeeping every scheme needs (Figure 1/2 of the paper).
///
/// Timing convention: [`GateArray::begin_cycle`] is called at the end of
/// network cycle `c` (inside the power manager's `tick`). State changes
/// requested during `tick(c)` become visible to the network at cycle `c+1`,
/// modelling the one-cycle latency of the power-gating controller.
#[derive(Debug, Clone)]
pub struct GateArray {
    gates: Vec<Gate>,
    wakeup_latency: Cycle,
    idle_timeout: u32,
    counters: PgCounters,
}

impl GateArray {
    /// Creates `n` routers, all powered on.
    pub fn new(n: usize, wakeup_latency: u32, idle_timeout: u32) -> Self {
        GateArray {
            gates: vec![Gate::On { idle_cycles: 0 }; n],
            wakeup_latency: wakeup_latency as Cycle,
            idle_timeout,
            counters: PgCounters::new(n),
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when managing zero routers.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Public power state of router `r`.
    pub fn state(&self, r: NodeId) -> PowerState {
        match self.gates[r.index()] {
            Gate::On { .. } => PowerState::On,
            Gate::Off => PowerState::Off,
            Gate::Waking { ready_at } => PowerState::WakingUp { ready_at },
        }
    }

    /// Single-pass bulk availability snapshot for the sharded SoA tick
    /// (see [`punchsim_noc::PowerManager::fill_availability`]): one walk
    /// over the gate vector instead of three virtual dispatches per
    /// router. Values are exactly what per-router [`GateArray::state`]
    /// queries would yield.
    pub fn fill_availability(
        &self,
        arrival_by: Cycle,
        local_by: Cycle,
        arrival: &mut [bool],
        local: &mut [bool],
        off: &mut [bool],
    ) {
        for (i, g) in self.gates.iter().enumerate() {
            let (a, l, o) = match *g {
                Gate::On { .. } => (true, true, false),
                Gate::Off => (false, false, true),
                Gate::Waking { ready_at } => (ready_at <= arrival_by, ready_at <= local_by, false),
            };
            arrival[i] = a;
            local[i] = l;
            off[i] = o;
        }
    }

    /// Activity counters.
    pub fn counters(&self) -> &PgCounters {
        &self.counters
    }

    /// Resets counters (end of warm-up); states are preserved.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Extra sideband-activity counter hooks for the schemes.
    pub fn counters_mut(&mut self) -> &mut PgCounters {
        &mut self.counters
    }

    /// Accounts the state each router held during `cycle` and promotes
    /// routers whose wakeup completes before the next cycle. Call exactly
    /// once at the start of every power-manager tick, before processing
    /// events.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        for (i, g) in self.gates.iter_mut().enumerate() {
            match *g {
                Gate::Off => self.counters.off_cycles[i] += 1,
                Gate::Waking { ready_at } => {
                    self.counters.waking_cycles[i] += 1;
                    if cycle + 1 >= ready_at {
                        *g = Gate::On { idle_cycles: 0 };
                    }
                }
                Gate::On { .. } => {}
            }
        }
    }

    /// Requests a wakeup of router `r` during `cycle`: an off router starts
    /// its wakeup transient and is fully on at `cycle + wakeup_latency`
    /// (the wakeup signal arrived *during* `cycle`, so the transient spans
    /// cycles `cycle..cycle + wakeup_latency`, hardware-style). On or
    /// already-waking routers are unaffected (but an on router's idle timer
    /// is reset).
    pub fn request_wake(&mut self, r: NodeId, cycle: Cycle) {
        let i = r.index();
        match self.gates[i] {
            Gate::Off => {
                self.counters.wake_events[i] += 1;
                self.gates[i] = Gate::Waking {
                    ready_at: cycle + self.wakeup_latency,
                };
            }
            Gate::On { .. } => self.gates[i] = Gate::On { idle_cycles: 0 },
            // The level signal keeps retrying while the transient completes.
            Gate::Waking { .. } => self.counters.wu_retries += 1,
        }
    }

    /// Escalated wakeup from the network watchdog: unconditionally starts
    /// (or continues) the wakeup of router `r`, overriding whatever kept its
    /// sleep gate asserted. Counted separately from normal wake events so a
    /// non-zero [`PgCounters::escalations`] flags that the safety net fired.
    pub fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.counters.record_escalation(r);
        if self.gates[r.index()] == Gate::Off {
            let i = r.index();
            self.counters.wake_events[i] += 1;
            self.gates[i] = Gate::Waking {
                ready_at: cycle + self.wakeup_latency,
            };
        }
    }

    /// Marks router `r` as "needed soon": resets the idle timer so the
    /// timeout filter will not power it off this cycle.
    pub fn keep_awake(&mut self, r: NodeId) {
        if let Gate::On { .. } = self.gates[r.index()] {
            self.gates[r.index()] = Gate::On { idle_cycles: 0 };
        }
    }

    /// Earliest cycle `>= now` at which any gate changes state under quiet
    /// all-idle ticks: a waking router's promotion tick, or an on router's
    /// sleep tick (its idle timeout, deferred past the scheme's
    /// `sleep_floor(i)` — the first cycle at which `may_sleep(i)` would hold).
    /// `None` when every gate is already off, i.e. the array is a fixed
    /// point apart from its off-cycle accounting.
    pub fn next_event_at(
        &self,
        now: Cycle,
        mut sleep_floor: impl FnMut(usize) -> Cycle,
    ) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for (i, g) in self.gates.iter().enumerate() {
            let at = match *g {
                Gate::Off => continue,
                Gate::Waking { ready_at } => now.max(ready_at.saturating_sub(1)),
                Gate::On { idle_cycles } => {
                    let timeout_at = now
                        + self
                            .idle_timeout
                            .saturating_sub(idle_cycles.saturating_add(1))
                            as Cycle;
                    timeout_at.max(sleep_floor(i))
                }
            };
            horizon = Some(horizon.map_or(at, |h| h.min(at)));
        }
        horizon
    }

    /// Closed-form replay of the quiet span `[from, to)`: for every cycle
    /// `c` in the span, behaves exactly like
    /// `begin_cycle(c); advance_idle(&all_true, |i| c >= sleep_floor(i))`
    /// but in O(routers) total instead of O(routers × span). `sleep_floor`
    /// is the scheme's sleep veto expressed as a cycle: router `i` may not
    /// sleep before cycle `sleep_floor(i)` (0 for unconditional sleeping).
    ///
    /// The per-cycle equivalence is pinned by `quiet_advance_matches_loop`
    /// below and, end to end, by `tests/differential.rs`.
    pub fn advance_quiet(
        &mut self,
        from: Cycle,
        to: Cycle,
        mut sleep_floor: impl FnMut(usize) -> Cycle,
    ) {
        if to <= from {
            return;
        }
        let span = to - from;
        for (i, g) in self.gates.iter_mut().enumerate() {
            // Resolve a waking gate first: it accrues waking cycles up to and
            // including its promotion tick, then evolves as On from there.
            let (on_from, ic0) = match *g {
                Gate::Off => {
                    self.counters.off_cycles[i] += span;
                    continue;
                }
                Gate::Waking { ready_at } => {
                    let promo = from.max(ready_at.saturating_sub(1));
                    if promo >= to {
                        self.counters.waking_cycles[i] += span;
                        continue;
                    }
                    self.counters.waking_cycles[i] += promo - from + 1;
                    (promo, 0u32)
                }
                Gate::On { idle_cycles } => (from, idle_cycles),
            };
            // During tick `c >= on_from` the idle counter reads
            // `ic0 + (c - on_from) + 1`, so the timeout filter first passes
            // at `timeout_at`; the sleep lands at the later of that and the
            // scheme's floor.
            let timeout_at =
                on_from + self.idle_timeout.saturating_sub(ic0.saturating_add(1)) as Cycle;
            let sleep_at = timeout_at.max(sleep_floor(i));
            if sleep_at < to {
                self.counters.sleep_events[i] += 1;
                self.counters.off_cycles[i] += (to - 1) - sleep_at;
                *g = Gate::Off;
            } else {
                let add = (to - on_from).min(u32::MAX as Cycle) as u32;
                *g = Gate::On {
                    idle_cycles: ic0.saturating_add(add),
                };
            }
        }
    }

    /// Appends the canonical snapshot encoding of every gate (see
    /// `punchsim_noc::snapshot`): the state tag plus its dynamic payload —
    /// `On` carries the idle counter (bounded by the timeout, past which the
    /// gate sleeps), `Waking` carries the remaining transient rebased
    /// against `now`. Counters are statistics and excluded.
    pub fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) {
        use punchsim_noc::snapshot::{put_u32, put_u64, put_u8};
        for g in &self.gates {
            match *g {
                Gate::On { idle_cycles } => {
                    put_u8(out, 0);
                    // The timeout filter compares against `idle_timeout`;
                    // larger values behave identically, so saturate to keep
                    // long-idle states from encoding distinctly.
                    put_u32(out, idle_cycles.min(self.idle_timeout));
                }
                Gate::Off => {
                    put_u8(out, 1);
                    put_u32(out, 0);
                }
                Gate::Waking { ready_at } => {
                    put_u8(out, 2);
                    put_u64(out, ready_at.saturating_sub(now));
                }
            }
        }
    }

    /// Advances idle timers using the network's per-router idleness and
    /// powers off routers that pass the timeout filter and the
    /// scheme-specific `may_sleep` predicate. Call once per tick, after
    /// event processing.
    pub fn advance_idle(&mut self, idle: &[bool], mut may_sleep: impl FnMut(usize) -> bool) {
        for (i, g) in self.gates.iter_mut().enumerate() {
            if let Gate::On { idle_cycles } = *g {
                if idle[i] {
                    let ic = idle_cycles + 1;
                    if ic >= self.idle_timeout && may_sleep(i) {
                        self.counters.sleep_events[i] += 1;
                        *g = Gate::Off;
                    } else {
                        *g = Gate::On { idle_cycles: ic };
                    }
                } else {
                    *g = Gate::On { idle_cycles: 0 };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_after_timeout_idle_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        let idle = [true];
        for c in 0..3 {
            g.begin_cycle(c);
            g.advance_idle(&idle, |_| true);
            assert_eq!(g.state(NodeId(0)), PowerState::On, "cycle {c}");
        }
        g.begin_cycle(3);
        g.advance_idle(&idle, |_| true);
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        assert_eq!(g.counters().sleep_events[0], 1);
    }

    #[test]
    fn activity_resets_idle_timer() {
        let mut g = GateArray::new(1, 8, 4);
        for c in 0..10 {
            g.begin_cycle(c);
            // Busy every third cycle: never reaches 4 consecutive idles.
            g.advance_idle(&[c % 3 != 0], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn wakeup_takes_wakeup_latency_cycles() {
        let mut g = GateArray::new(1, 8, 4);
        // Put it to sleep.
        for c in 0..4 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::Off);
        // WU asserted during cycle 10.
        g.begin_cycle(10);
        g.request_wake(NodeId(0), 10);
        g.advance_idle(&[true], |_| true);
        assert_eq!(
            g.state(NodeId(0)),
            PowerState::WakingUp { ready_at: 18 },
            "the transient spans cycles 10..18; fully on at 10 + 8"
        );
        for c in 11..=17 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // After tick(17) the router is on for cycle 18.
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.counters().wake_events[0], 1);
        // Cycles 11..=17 were accounted as waking (the arrival cycle 10 was
        // already counted as off).
        assert_eq!(g.counters().total_waking_cycles(), 7);
    }

    #[test]
    fn keep_awake_blocks_sleep() {
        let mut g = GateArray::new(1, 8, 2);
        for c in 0..20 {
            g.begin_cycle(c);
            g.keep_awake(NodeId(0)); // e.g. a punch forewarning each cycle
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
    }

    #[test]
    fn may_sleep_predicate_vetoes() {
        let mut g = GateArray::new(2, 8, 1);
        for c in 0..5 {
            g.begin_cycle(c);
            g.advance_idle(&[true, true], |i| i == 1);
        }
        assert_eq!(g.state(NodeId(0)), PowerState::On);
        assert_eq!(g.state(NodeId(1)), PowerState::Off);
    }

    #[test]
    fn off_cycles_accumulate() {
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..10 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        // Slept after tick(0) (1 idle cycle >= timeout 1): off during 1..=9.
        assert_eq!(g.counters().total_off_cycles(), 9);
    }

    /// Replays the quiet span per-cycle and via the closed form and demands
    /// bit-identical gates *and* counters, over randomized initial states,
    /// sleep floors and span lengths. This is the unit-level half of the
    /// fast-forward equivalence argument (the end-to-end half lives in
    /// `tests/differential.rs`).
    #[test]
    fn quiet_advance_matches_loop() {
        use punchsim_types::SimRng;
        let mut rng = SimRng::seed_from_u64(0x9A7E5);
        for trial in 0..200 {
            let n = 1 + (rng.next_u64() % 6) as usize;
            let latency = 1 + (rng.next_u64() % 12) as u32;
            let timeout = (rng.next_u64() % 6) as u32;
            let from: Cycle = rng.next_u64() % 50;
            let span: Cycle = rng.next_u64() % 40;
            let mut slow = GateArray::new(n, latency, timeout);
            // Randomize initial gate states through the public API.
            for i in 0..n {
                match rng.next_u64() % 3 {
                    0 => {} // stays On { idle_cycles: 0 }
                    1 => {
                        // Drive it Off: enough all-idle ticks starting well
                        // before `from`.
                        for c in 0..(timeout as Cycle + 1) {
                            slow.begin_cycle(c);
                            let idle: Vec<bool> = (0..n).map(|j| j == i).collect();
                            slow.advance_idle(&idle, |j| j == i);
                        }
                    }
                    _ => {
                        for c in 0..(timeout as Cycle + 1) {
                            slow.begin_cycle(c);
                            let idle: Vec<bool> = (0..n).map(|j| j == i).collect();
                            slow.advance_idle(&idle, |j| j == i);
                        }
                        slow.request_wake(
                            NodeId(i as u16),
                            from.saturating_sub(rng.next_u64() % 4),
                        );
                    }
                }
            }
            let floors: Vec<Cycle> = (0..n).map(|_| rng.next_u64() % 80).collect();
            let mut fast = slow.clone();
            let all_idle = vec![true; n];
            for c in from..from + span {
                slow.begin_cycle(c);
                slow.advance_idle(&all_idle, |i| c >= floors[i]);
            }
            fast.advance_quiet(from, from + span, |i| floors[i]);
            assert_eq!(slow.gates, fast.gates, "trial {trial} gates diverged");
            assert_eq!(
                slow.counters(),
                fast.counters(),
                "trial {trial} counters diverged"
            );
        }
    }

    #[test]
    fn next_event_at_predicts_first_transition() {
        // One on router, timeout 4, floor 10: the timeout passes at tick 3
        // but the floor defers the sleep to tick 10.
        let g = GateArray::new(1, 8, 4);
        assert_eq!(g.next_event_at(0, |_| 10), Some(10));
        assert_eq!(g.next_event_at(0, |_| 0), Some(3));
        // A waking router promotes at ready_at - 1.
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..2 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        g.request_wake(NodeId(0), 10);
        assert_eq!(g.next_event_at(10, |_| 0), Some(17));
        // An off router is a fixed point.
        let mut g = GateArray::new(1, 8, 1);
        for c in 0..2 {
            g.begin_cycle(c);
            g.advance_idle(&[true], |_| true);
        }
        assert_eq!(g.next_event_at(5, |_| 0), None);
    }
}
