//! Punch signals: normalized target sets and the sideband fabric that
//! relays them one hop per cycle (§4.1 of the paper).
//!
//! A *punch signal* is the merged encoding of every wakeup signal crossing a
//! link in one cycle. Thanks to XY-routing turn restrictions and the
//! *implied target* rule (a target on the path to a farther target can be
//! dropped), the set of distinct signals per link is tiny — 22 on an X link
//! for 3-hop punches (Table 1), 3 on a Y link — so merging is contention-free
//! with 5-bit/2-bit wires. This module carries the *sets*; the codeword
//! assignment lives in [`crate::codebook`].

use punchsim_types::{Direction, NodeId, RouteView};

/// Maximum distinct targets a single punch signal can carry after
/// normalization (2 suffices for 3-hop punches on X links; 4-hop punches
/// need one more; the extra headroom is asserted, never silently dropped).
pub const MAX_TARGETS: usize = 6;

/// A normalized set of targeted routers carried by one punch signal.
///
/// Invariants: no duplicate targets, and no target lies on the XY path (from
/// the sending router) to another target — such *implied* targets are
/// removed by [`PunchSet::insert_normalized`], because every router a punch
/// passes through is woken anyway (§4.1 step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PunchSet {
    targets: [NodeId; MAX_TARGETS],
    len: u8,
}

impl PunchSet {
    /// The empty signal (idle wire).
    pub fn new() -> Self {
        PunchSet::default()
    }

    /// Number of explicit targets.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the wire is idle.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The explicit targets, in insertion-then-normalization order.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets[..self.len as usize]
    }

    /// `true` if `t` is an explicit target.
    pub fn contains(&self, t: NodeId) -> bool {
        self.targets().contains(&t)
    }

    /// Inserts `t` into the set, maintaining the normalization invariant
    /// with respect to routes rooted at `sender` (under `view`'s topology
    /// and routing function):
    ///
    /// * if `t` lies on the path to an existing target, it is implied —
    ///   nothing changes;
    /// * existing targets that lie on the path to `t` become implied and
    ///   are removed.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_TARGETS`] independent targets accumulate —
    /// the fabric's one-local-generation-per-cycle arbitration makes that
    /// unreachable.
    pub fn insert_normalized(&mut self, view: impl Into<RouteView>, sender: NodeId, t: NodeId) {
        let view = view.into();
        debug_assert_ne!(t, sender, "a punch target is never the sender");
        let mut keep = [NodeId(0); MAX_TARGETS];
        let mut n = 0usize;
        for &old in self.targets() {
            if old == t || view.on_path(sender, old, t) {
                // `t` is implied by `old`: set unchanged.
                return;
            }
            if !view.on_path(sender, t, old) {
                keep[n] = old;
                n += 1;
            }
        }
        assert!(n < MAX_TARGETS, "punch set overflow");
        keep[n] = t;
        n += 1;
        self.targets = keep;
        self.len = n as u8;
    }

    /// A canonical (sorted) copy, for codebook lookup and comparison.
    pub fn canonical(&self) -> PunchSet {
        let mut c = *self;
        c.targets[..c.len as usize].sort_unstable();
        c
    }
}

impl std::fmt::Display for PunchSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.targets().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "}}")
    }
}

/// The per-link punch wires of the whole mesh, advanced one hop per cycle.
///
/// Each cycle, a router merges (a) punch sets arriving on its input wires
/// and (b) at most one locally generated wakeup per output direction
/// (additional local wakeups wait a cycle in a small queue — the hardware
/// encoder can only express codebook sets), then forwards each target along
/// its route. Every router a set arrives at is *notified*: the power
/// manager wakes it if off and defers its sleep timer.
#[derive(Debug, Clone)]
pub struct PunchFabric {
    view: RouteView,
    hops: u16,
    /// Sets that will arrive at router `r` from direction `d` next cycle.
    arriving: Vec<[PunchSet; 4]>,
    /// Double buffer for `arriving`, reused across ticks so the steady-state
    /// tick allocates nothing. Always all-empty between ticks.
    scratch: Vec<[PunchSet; 4]>,
    /// Pending locally generated targets per router and output direction.
    gen_queues: Vec<[Vec<NodeId>; 4]>,
    /// Exact count of non-empty `arriving` sets, maintained incrementally so
    /// an idle fabric's tick is an O(1) early return and `is_idle`/`pending`
    /// never rescan the mesh.
    wires_live: usize,
    /// Exact count of queued local generations (same purpose).
    gens_queued: usize,
    /// Total non-idle signal link traversals (wire energy metric).
    pub hops_sent: u64,
    /// Per-router breakdown of `hops_sent`: `hops_sent_at[r]` counts the
    /// traversals departing router `r` (sums to `hops_sent`). A
    /// statistic like `hops_sent`, excluded from `encode_state`.
    pub hops_sent_at: Vec<u64>,
}

impl PunchFabric {
    /// Creates an idle fabric over the given substrate + routing (a bare
    /// `Mesh` selects XY) with punch depth `hops`.
    pub fn new(view: impl Into<RouteView>, hops: u16) -> Self {
        let view = view.into();
        let n = view.topo.nodes();
        PunchFabric {
            view,
            hops,
            arriving: vec![[PunchSet::new(); 4]; n],
            scratch: vec![[PunchSet::new(); 4]; n],
            gen_queues: vec![Default::default(); n],
            wires_live: 0,
            gens_queued: 0,
            hops_sent: 0,
            hops_sent_at: vec![0; n],
        }
    }

    /// Punch depth H (how many hops ahead wakeups target).
    pub fn hops(&self) -> u16 {
        self.hops
    }

    /// Appends the fabric's canonical snapshot encoding (see
    /// `punchsim_noc::snapshot`): the punch sets on every wire (canonical
    /// target order — merge order within a cycle is not semantic) and the
    /// queued locally-generated targets per output direction. `hops_sent`
    /// is a statistic (monotone) and excluded; `scratch` is empty between
    /// ticks; `wires_live`/`gens_queued` are derived counts.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use punchsim_noc::snapshot::{put_u16, put_u8};
        for wires in &self.arriving {
            for set in wires {
                let canon = set.canonical();
                put_u8(out, canon.len() as u8);
                for &t in canon.targets() {
                    put_u16(out, t.0);
                }
            }
        }
        for queues in &self.gen_queues {
            for q in queues {
                put_u8(out, q.len() as u8);
                for t in q {
                    put_u16(out, t.0);
                }
            }
        }
    }

    /// Queues a wakeup generated at `router` for a packet destined to `dst`,
    /// returning the punched target for observability.
    ///
    /// The target is the router `min(H, dist)` hops ahead on the route
    /// (§4.1 step 1). Nothing is queued when `router == dst` (returns
    /// `None`).
    pub fn generate(&mut self, router: NodeId, dst: NodeId) -> Option<NodeId> {
        if router == dst {
            return None;
        }
        let target = self.view.router_ahead(router, dst, self.hops);
        let dir = self
            .view
            .direction(router, target)
            .expect("target != router by construction");
        self.gen_queues[router.index()][dir.index()].push(target);
        self.gens_queued += 1;
        Some(target)
    }

    /// Advances the fabric one cycle. Calls `notify(router)` for every
    /// router that receives a punch arrival (targeted *or* en route — both
    /// must stay awake or wake up).
    pub fn tick(&mut self, mut notify: impl FnMut(NodeId)) {
        if self.wires_live == 0 && self.gens_queued == 0 {
            return; // idle fabric: nothing can arrive, nothing to relay
        }
        let n = self.view.topo.nodes();
        let mut live = 0usize;
        for idx in 0..n {
            let here = NodeId(idx as u16);
            // Collect arrivals; any non-empty arrival notifies this router.
            let mut outgoing = [PunchSet::new(); 4];
            let mut any_arrival = false;
            for d in 0..4 {
                let set = std::mem::take(&mut self.arriving[idx][d]);
                if set.is_empty() {
                    continue;
                }
                any_arrival = true;
                for &t in set.targets() {
                    if t == here {
                        continue; // final target reached; consumed
                    }
                    let dir = self.view.direction(here, t).expect("t != here");
                    outgoing[dir.index()].insert_normalized(self.view, here, t);
                }
            }
            // Local generations also notify (they wake the local router when
            // it is the first hop of an injection punch).
            for (d, out) in outgoing.iter_mut().enumerate() {
                if let Some(t) = self.pop_gen(idx, d) {
                    any_arrival = true;
                    out.insert_normalized(self.view, here, t);
                }
            }
            if any_arrival {
                notify(here);
            }
            // Ship each non-empty outgoing set one hop.
            for (d, set) in outgoing.into_iter().enumerate() {
                if set.is_empty() {
                    continue;
                }
                let dir = Direction::ALL[d];
                let Some(nb) = self.view.topo.neighbor(here, dir) else {
                    debug_assert!(false, "punch target routed off the substrate");
                    continue;
                };
                self.hops_sent += 1;
                self.hops_sent_at[idx] += 1;
                live += 1;
                self.scratch[nb.index()][dir.opposite().index()] = set;
            }
        }
        // `arriving` is all-empty after the take() sweep above, so the two
        // buffers swap roles with no clearing pass.
        std::mem::swap(&mut self.arriving, &mut self.scratch);
        self.wires_live = live;
        debug_assert!(self
            .scratch
            .iter()
            .all(|a| a.iter().all(PunchSet::is_empty)));
    }

    /// Pops the next queued local generation for output `d` of router `idx`,
    /// skipping targets that merge into already-forwarded sets for free.
    fn pop_gen(&mut self, idx: usize, d: usize) -> Option<NodeId> {
        let q = &mut self.gen_queues[idx][d];
        if q.is_empty() {
            None
        } else {
            self.gens_queued -= 1;
            Some(q.remove(0))
        }
    }

    /// In-flight punch sets as `(link_source, direction, set)` — the set is
    /// currently traversing the wire leaving `link_source` toward
    /// `direction` (test and validation hook).
    pub fn in_flight(&self) -> Vec<(NodeId, Direction, PunchSet)> {
        let mut v = Vec::new();
        for (idx, arr) in self.arriving.iter().enumerate() {
            for (d, set) in arr.iter().enumerate() {
                if set.is_empty() {
                    continue;
                }
                // Arriving at router `idx` from direction `d` means the set
                // was sent by the neighbour in that direction.
                let dir = Direction::ALL[d];
                let src = self
                    .view
                    .topo
                    .neighbor(NodeId(idx as u16), dir)
                    .expect("punch arrived over a real link");
                v.push((src, dir.opposite(), *set));
            }
        }
        v
    }

    /// Number of punch signals in flight on wires plus locally queued
    /// generations — the sideband backlog reported in stall diagnostics.
    /// O(1): both counts are maintained incrementally.
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.wires_live,
            self.arriving
                .iter()
                .flat_map(|a| a.iter())
                .filter(|s| !s.is_empty())
                .count()
        );
        debug_assert_eq!(
            self.gens_queued,
            self.gen_queues
                .iter()
                .flat_map(|g| g.iter())
                .map(Vec::len)
                .sum::<usize>()
        );
        self.wires_live + self.gens_queued
    }

    /// `true` when no signals are in flight and no generations queued. O(1).
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn implied_targets_are_dropped() {
        // §4.1 step 4: merging 27->21 with 26->29 keeps only {21} on the
        // 27->28 wire, because 29 lies on the path from 27 to 21.
        let m = mesh8();
        let mut s = PunchSet::new();
        s.insert_normalized(m, NodeId(27), NodeId(21));
        s.insert_normalized(m, NodeId(27), NodeId(29));
        assert_eq!(s.targets(), &[NodeId(21)]);
        // Insertion order must not matter.
        let mut s2 = PunchSet::new();
        s2.insert_normalized(m, NodeId(27), NodeId(29));
        s2.insert_normalized(m, NodeId(27), NodeId(21));
        assert_eq!(s2.targets(), &[NodeId(21)]);
    }

    #[test]
    fn independent_targets_coexist() {
        // Table 1 entry 13: {21, 36} is a valid two-target set.
        let m = mesh8();
        let mut s = PunchSet::new();
        s.insert_normalized(m, NodeId(27), NodeId(21));
        s.insert_normalized(m, NodeId(27), NodeId(36));
        let c = s.canonical();
        assert_eq!(c.targets(), &[NodeId(21), NodeId(36)]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let m = mesh8();
        let mut s = PunchSet::new();
        s.insert_normalized(m, NodeId(27), NodeId(29));
        s.insert_normalized(m, NodeId(27), NodeId(29));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn generate_targets_min_hops_ahead() {
        let m = mesh8();
        let mut f = PunchFabric::new(m, 3);
        // Packet at R26 destined to R31: target R29 (paper example).
        f.generate(NodeId(26), NodeId(31));
        let mut notified = Vec::new();
        // Cycle 1: the set leaves R26 eastward and arrives at R27.
        f.tick(|r| notified.push(r));
        assert_eq!(notified, vec![NodeId(26)]);
        notified.clear();
        f.tick(|r| notified.push(r));
        assert_eq!(notified, vec![NodeId(27)]);
        notified.clear();
        f.tick(|r| notified.push(r));
        assert_eq!(notified, vec![NodeId(28)]);
        notified.clear();
        f.tick(|r| notified.push(r));
        assert_eq!(notified, vec![NodeId(29)]);
        notified.clear();
        // Consumed at the target: nothing further.
        f.tick(|r| notified.push(r));
        assert!(notified.is_empty());
        assert!(f.is_idle());
        assert_eq!(f.hops_sent, 3);
    }

    #[test]
    fn turning_punch_follows_xy_path() {
        let m = mesh8();
        let mut f = PunchFabric::new(m, 3);
        // R26 -> dst R44 (x=4,y=5): path 27, 28, then south; 3-hop target
        // is R36 (x=4,y=4).
        f.generate(NodeId(26), NodeId(44));
        let mut seen = Vec::new();
        for _ in 0..6 {
            f.tick(|r| seen.push(r));
        }
        assert_eq!(
            seen,
            vec![NodeId(26), NodeId(27), NodeId(28), NodeId(36)],
            "notification sweeps the XY path to the 3-hop target"
        );
    }

    #[test]
    fn same_cycle_generations_merge_contention_free() {
        let m = mesh8();
        let mut f = PunchFabric::new(m, 3);
        // R27 targets R21 (via 28); simultaneously R26's relay would do so
        // too. Generate two wakeups at 27 with different destinations whose
        // targets share the eastward wire.
        f.generate(NodeId(27), NodeId(23)); // target 3 hops east: R30
        f.generate(NodeId(27), NodeId(21)); // target R21 (2 east, 1 north)
                                            // One local generation per output per cycle: the second waits.
        let mut rounds: Vec<Vec<NodeId>> = Vec::new();
        for _ in 0..8 {
            let mut v = Vec::new();
            f.tick(|r| v.push(r));
            rounds.push(v);
        }
        let all: Vec<NodeId> = rounds.concat();
        // Both 30 and 21 eventually get notified.
        assert!(all.contains(&NodeId(30)));
        assert!(all.contains(&NodeId(21)));
        assert!(f.is_idle());
    }

    #[test]
    fn relay_merges_with_local_generation() {
        let m = mesh8();
        let mut f = PunchFabric::new(m, 3);
        // A relay from R26 (target 36, turning south at 28) and a local
        // generation at R27 (target 30, straight east) share the 27->28 wire
        // in the same cycle without delaying each other.
        f.generate(NodeId(26), NodeId(36));
        f.tick(|_| {}); // 26 -> 27 in flight
        f.generate(NodeId(27), NodeId(23)); // target R30 via east
        let mut seen = Vec::new();
        for _ in 0..6 {
            f.tick(|r| seen.push(r));
        }
        assert!(seen.contains(&NodeId(36)));
        assert!(seen.contains(&NodeId(30)));
        // 36 and 30 diverge at 28; both were carried across 27->28 at once.
        assert!(f.is_idle());
    }
}
