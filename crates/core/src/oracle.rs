//! The stepping interface the exhaustive wakeup-protocol checker explores.
//!
//! [`StepOracle`] abstracts "a system the checker can fork, step one cycle
//! under a chosen fault, and canonically fingerprint". The production
//! implementation is [`punchsim_noc::Network`]; keeping the checker against
//! a trait (rather than `Network` directly) pins down exactly which
//! observations the three verified properties depend on, and lets tests
//! drive the checker with tiny hand-built systems.

use punchsim_noc::obs::PowerTag;
use punchsim_noc::Network;
use punchsim_types::{Cycle, FaultChoice, SimError};

/// A forkable, canonically-encodable transition system stepped one cycle at
/// a time under per-cycle fault choices.
///
/// The abstraction the checker relies on (argued in DESIGN.md §14 from the
/// §12 quiescence contract): two instances with equal [`canonical_key`]s
/// produce equal behaviour — the same successor keys and the same property
/// observations — for every sequence of future choices.
///
/// [`canonical_key`]: StepOracle::canonical_key
pub trait StepOracle: Sized {
    /// Current cycle (for bounding and for rebasing counterexample traces).
    fn cycle(&self) -> Cycle;

    /// Canonical byte fingerprint of all dynamic state, rebased so that
    /// states differing only by a uniform time shift collide. `None` when
    /// the system cannot be fingerprinted (e.g. an unsupported power
    /// manager), which aborts exploration rather than risking unsoundness.
    fn canonical_key(&self) -> Option<Vec<u8>>;

    /// Deep-copies the system so one state can be stepped under several
    /// different choices. `None` when the system is not forkable.
    fn fork(&self) -> Option<Self>;

    /// Arms `choice` for the next step, then advances one cycle. Returns
    /// `false` (without stepping) if the system cannot honour the choice —
    /// the checker then skips that edge. A step error is a property
    /// violation candidate (stall or invariant), surfaced verbatim.
    fn step(&mut self, choice: FaultChoice) -> Result<bool, SimError>;

    /// `true` when every injected packet has fully ejected — the terminal
    /// predicate for no-deadlock and the frame for no-lost-wakeup.
    fn delivered_all(&self) -> bool;

    /// Cycles since the last observed forward progress (bounded-stall's
    /// measured quantity).
    fn stall_age(&self) -> Cycle;

    /// `true` while router `r`'s WU handshake is asserted and unanswered —
    /// the premise of the no-lost-wakeup property.
    fn wu_pending(&self, r: usize) -> bool;

    /// Power tag of router `r` (no-lost-wakeup's conclusion looks for
    /// `On`/`Waking`).
    fn power_tag(&self, r: usize) -> PowerTag;

    /// Number of routers (the range of `wu_pending`/`power_tag` indices).
    fn routers(&self) -> usize;
}

impl StepOracle for Network {
    fn cycle(&self) -> Cycle {
        Network::cycle(self)
    }

    fn canonical_key(&self) -> Option<Vec<u8>> {
        self.encode_state()
    }

    fn fork(&self) -> Option<Self> {
        self.try_clone()
    }

    fn step(&mut self, choice: FaultChoice) -> Result<bool, SimError> {
        if !choice.is_none() && !self.arm_fault_choice(choice) {
            return Ok(false);
        }
        self.tick()?;
        Ok(true)
    }

    fn delivered_all(&self) -> bool {
        self.in_flight() == 0
    }

    fn stall_age(&self) -> Cycle {
        Network::stall_age(self)
    }

    fn wu_pending(&self, r: usize) -> bool {
        self.blocked_streaks()[r] > 0
    }

    fn power_tag(&self, r: usize) -> PowerTag {
        self.power_state(punchsim_types::NodeId(r as u16)).tag()
    }

    fn routers(&self) -> usize {
        self.topology().nodes()
    }
}
