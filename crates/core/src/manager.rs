//! Power-gating scheme implementations of the [`PowerManager`] trait.
//!
//! * [`ConvPgManager`] — conventional power-gating (Figure 2 handshake),
//!   optionally with the ConvOpt optimizations: the idle-timeout filter and
//!   the one-hop early wakeup at route-computation time (paper ref. 24).
//! * [`PowerPunchManager`] — the paper's contribution: multi-hop punch
//!   signals (§4.1) and, optionally, injection-node slack (§4.2).

use punchsim_noc::obs::{Event, Stamped};
use punchsim_noc::{IdleInfo, PgCounters, PmEvent, PowerManager, PowerState};
use punchsim_types::{Cycle, NodeId, PowerConfig, RouteView, SchemeKind};

use crate::gating::GateArray;
use crate::punch::PunchFabric;

/// Conventional power-gating: the WU wire of Figure 2 wakes a sleeping
/// router when a neighbour (or the local NI) has a stalled packet for it.
///
/// With `early_wakeup`, the WU is additionally asserted as soon as the
/// output direction of an arriving head flit is computed (look-ahead
/// routing), hiding roughly one router-pipeline's worth of wakeup latency
/// (paper ref. 24) — the paper's `ConvOpt-PG` when combined with the
/// 4-cycle timeout filter.
#[derive(Debug, Clone)]
pub struct ConvPgManager {
    kind: SchemeKind,
    view: RouteView,
    gate: GateArray,
    early_wakeup: bool,
}

impl ConvPgManager {
    /// Creates the conventional scheme over any topology/routing pair (a
    /// bare [`punchsim_types::Mesh`] means XY routing). `early_wakeup`
    /// selects ConvOpt behaviour; plain conventional gating uses the
    /// minimum 2-cycle timeout, ConvOpt uses `power.idle_timeout`.
    pub fn new(view: impl Into<RouteView>, power: &PowerConfig, early_wakeup: bool) -> Self {
        let view: RouteView = view.into();
        let timeout = if early_wakeup {
            power.idle_timeout
        } else {
            2 // the minimum needed to let in-flight flits land (§2.2)
        };
        ConvPgManager {
            kind: if early_wakeup {
                SchemeKind::ConvOptPg
            } else {
                SchemeKind::ConvPg
            },
            view,
            gate: GateArray::new(view.topo.nodes(), power.wakeup_latency, timeout),
            early_wakeup,
        }
    }
}

impl PowerManager for ConvPgManager {
    fn kind(&self) -> SchemeKind {
        self.kind
    }

    fn state(&self, r: NodeId) -> PowerState {
        self.gate.state(r)
    }

    fn fill_availability(
        &self,
        arrival_by: Cycle,
        local_by: Cycle,
        arrival: &mut [bool],
        local: &mut [bool],
        off: &mut [bool],
    ) {
        self.gate
            .fill_availability(arrival_by, local_by, arrival, local, off);
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.gate.begin_cycle(cycle);
        for ev in events {
            match *ev {
                PmEvent::BlockedNeed { router } => {
                    self.gate.counters_mut().record_wu_assertion(router);
                    self.gate.request_wake(router, cycle);
                }
                PmEvent::HeadArrival { router, dst } if self.early_wakeup => {
                    if let Some(next) = self.view.next_hop(router, dst) {
                        self.gate.counters_mut().record_wu_assertion(next);
                        self.gate.request_wake(next, cycle);
                    }
                }
                // Conventional gating has no multi-hop or NI-slack channel.
                _ => {}
            }
        }
        self.gate.advance_idle(idle.idle, |_| true);
    }

    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.gate.force_wake(r, cycle);
    }

    fn counters(&self) -> &PgCounters {
        self.gate.counters()
    }

    fn reset_counters(&mut self) {
        self.gate.reset_counters();
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // Conventional gating sleeps unconditionally once the timeout
        // passes: the horizon is purely the gate array's.
        self.gate.next_event_at(now, |_| 0)
    }

    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        if idle.idle.iter().all(|&b| b) {
            self.gate.advance_quiet(from, to, |_| 0);
        } else {
            for c in from..to {
                self.tick(c, &[], idle);
            }
        }
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        Some(Box::new(self.clone()))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        // All dynamic state lives in the gate array; `kind`/`view`/
        // `early_wakeup` are construction-time constants.
        self.gate.encode_state(now, out);
        true
    }
}

/// The Power Punch scheme (§4): punch signals race ahead of packets through
/// the sideband fabric, waking every router on the imminent path; with
/// `ni_slack`, wakeups additionally exploit "slack 1" (destination known at
/// NI entry) and "slack 2" (L2/directory access start) at injection nodes.
#[derive(Debug, Clone)]
pub struct PowerPunchManager {
    kind: SchemeKind,
    gate: GateArray,
    fabric: PunchFabric,
    /// Slack 1: punches launch at NI entry (destination just known).
    slack1: bool,
    /// Slack 2: the local router wakes at resource-access start.
    slack2: bool,
    /// Sleep filter: a router notified by a punch may not power off until
    /// this cycle — it knows a packet arrives within the window (§4.3),
    /// which replaces blind timeout filtering with exact forewarning.
    forewarn_until: Vec<Cycle>,
    forewarn_window: Cycle,
    /// Punch emissions/deliveries buffered for the network's event sink;
    /// `None` while tracing is disabled (the common case — recording then
    /// costs one branch per punch).
    trace: Option<Vec<Stamped>>,
}

impl PowerPunchManager {
    /// Creates the Power Punch scheme over any topology/routing pair (a
    /// bare [`punchsim_types::Mesh`] means XY routing). `ni_slack = false`
    /// is the paper's `PowerPunch-Signal`, `true` is the full
    /// `PowerPunch-PG`.
    ///
    /// `hop_latency` is the per-hop packet latency (router stages + link),
    /// used to size the forewarning window.
    pub fn new(
        view: impl Into<RouteView>,
        power: &PowerConfig,
        hop_latency: u64,
        ni_slack: bool,
    ) -> Self {
        Self::with_slacks(view, power, hop_latency, ni_slack, ni_slack)
    }

    /// Creates a Power Punch manager with the two injection-node slack
    /// mechanisms (§4.2) controlled independently — an ablation hook.
    /// `slack1` launches punches at NI entry; `slack2` wakes the local
    /// router at resource-access start. The paper's `PowerPunch-PG` is
    /// both on; `PowerPunch-Signal` is both off.
    pub fn with_slacks(
        view: impl Into<RouteView>,
        power: &PowerConfig,
        hop_latency: u64,
        slack1: bool,
        slack2: bool,
    ) -> Self {
        let view: RouteView = view.into();
        PowerPunchManager {
            kind: if slack1 || slack2 {
                SchemeKind::PowerPunchFull
            } else {
                SchemeKind::PowerPunchSignal
            },
            gate: GateArray::new(view.topo.nodes(), power.wakeup_latency, power.idle_timeout),
            fabric: PunchFabric::new(view, power.punch_hops),
            slack1,
            slack2,
            forewarn_until: vec![0; view.topo.nodes()],
            trace: None,
            // A punch notification means a packet arrives within at most
            // H hops of packet flight time; afterwards the regular idle
            // timeout takes over (the punch gives *exact* short-horizon
            // knowledge, so the window must not outlive it — §4.3).
            forewarn_window: power.punch_hops as u64 * hop_latency,
        }
    }

    /// The punch fabric (for inspection in tests and examples).
    pub fn fabric(&self) -> &PunchFabric {
        &self.fabric
    }

    fn notify_local(&mut self, node: NodeId, cycle: Cycle) {
        self.gate.request_wake(node, cycle);
        self.forewarn_until[node.index()] =
            self.forewarn_until[node.index()].max(cycle + self.forewarn_window);
    }

    /// Generates a punch and, when tracing, records the emission with its
    /// resolved target (`min(H, dist)` hops ahead).
    fn punch(&mut self, cycle: Cycle, router: NodeId, dst: NodeId) {
        let target = self.fabric.generate(router, dst);
        if let (Some(target), Some(buf)) = (target, self.trace.as_mut()) {
            buf.push(Stamped {
                cycle,
                event: Event::PunchEmit {
                    router,
                    dst,
                    target,
                },
            });
        }
    }
}

impl PowerManager for PowerPunchManager {
    fn kind(&self) -> SchemeKind {
        self.kind
    }

    fn state(&self, r: NodeId) -> PowerState {
        self.gate.state(r)
    }

    fn fill_availability(
        &self,
        arrival_by: Cycle,
        local_by: Cycle,
        arrival: &mut [bool],
        local: &mut [bool],
        off: &mut [bool],
    ) {
        self.gate
            .fill_availability(arrival_by, local_by, arrival, local, off);
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.gate.begin_cycle(cycle);
        for ev in events {
            match *ev {
                // Multi-hop punch: generated the moment a head flit is
                // buffered (look-ahead information is available then).
                PmEvent::HeadArrival { router, dst } => {
                    self.punch(cycle, router, dst);
                }
                // Safety net: the conventional handshake still exists (a
                // punch that could not fully cover the wakeup leaves a
                // stalled packet; the WU wire keeps the guarantee).
                PmEvent::BlockedNeed { router } => {
                    self.gate.counters_mut().record_wu_assertion(router);
                    self.gate.request_wake(router, cycle);
                }
                // Slack 1 (PowerPunch-PG): destination known at NI entry.
                PmEvent::NiMessageKnown { node, dst } if self.slack1 => {
                    self.notify_local(node, cycle);
                    self.punch(cycle, node, dst);
                }
                // Without slack 1, punches launch when the packet is ready
                // to inject (PowerPunch-Signal).
                PmEvent::NiReadyToInject { node, dst } if !self.slack1 => {
                    self.notify_local(node, cycle);
                    self.punch(cycle, node, dst);
                }
                // Slack 2 (PowerPunch-PG): a packet will be generated, so
                // wake the local router even before the destination exists.
                PmEvent::FutureInjection { node } if self.slack2 => {
                    self.notify_local(node, cycle);
                }
                _ => {}
            }
        }
        // Advance punch signals one hop; every router they reach wakes up
        // (or stays awake) and learns a packet is imminent.
        let gate = &mut self.gate;
        let forewarn_until = &mut self.forewarn_until;
        let window = self.forewarn_window;
        let trace = &mut self.trace;
        self.fabric.tick(|r| {
            gate.request_wake(r, cycle);
            forewarn_until[r.index()] = forewarn_until[r.index()].max(cycle + window);
            if let Some(buf) = trace.as_mut() {
                buf.push(Stamped {
                    cycle,
                    event: Event::PunchDeliver { router: r },
                });
            }
        });
        self.gate.counters_mut().punch_hops = self.fabric.hops_sent;
        let fw = &self.forewarn_until;
        self.gate.advance_idle(idle.idle, |i| cycle >= fw[i]);
    }

    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        self.gate.force_wake(r, cycle);
    }

    fn pending_punches(&self) -> usize {
        self.fabric.pending()
    }

    fn counters(&self) -> &PgCounters {
        self.gate.counters()
    }

    fn punch_hops_at(&self) -> Option<&[u64]> {
        Some(&self.fabric.hops_sent_at)
    }

    fn reset_counters(&mut self) {
        self.gate.reset_counters();
        self.fabric.hops_sent = 0;
        self.fabric.hops_sent_at.iter_mut().for_each(|c| *c = 0);
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
    }

    fn drain_trace(&mut self) -> Vec<Stamped> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.fabric.is_idle() {
            // Punches sweep one hop per cycle: deliveries (wakeups and
            // forewarn extensions) can land every cycle until drained.
            return Some(now);
        }
        let fw = &self.forewarn_until;
        self.gate.next_event_at(now, |i| fw[i])
    }

    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        if self.fabric.is_idle() && idle.idle.iter().all(|&b| b) {
            // An idle fabric makes the per-cycle tick collapse to
            // begin_cycle + advance_idle with the forewarning floor, which
            // the gate array replays in closed form.
            let fw = &self.forewarn_until;
            self.gate.advance_quiet(from, to, |i| fw[i]);
        } else {
            for c in from..to {
                self.tick(c, &[], idle);
            }
        }
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        Some(Box::new(self.clone()))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        use punchsim_noc::snapshot::put_u64;
        self.gate.encode_state(now, out);
        // Forewarning floors, rebased: 0 means "may sleep now"; positive
        // values are bounded by the forewarn window.
        for &until in &self.forewarn_until {
            put_u64(out, until.saturating_sub(now));
        }
        self.fabric.encode_state(out);
        // The trace buffer is drained to the sink and never feeds back into
        // dynamics; excluded.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn power() -> PowerConfig {
        PowerConfig::default()
    }

    fn all_idle(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    fn sleep_all(m: &mut dyn PowerManager, n: usize, from: Cycle, ticks: u64) {
        let idle = all_idle(n);
        for c in from..from + ticks {
            m.tick(c, &[], IdleInfo { idle: &idle });
        }
    }

    #[test]
    fn conv_wakes_only_on_blocked_need() {
        let mesh = Mesh::new(4, 4);
        let mut m = ConvPgManager::new(mesh, &power(), false);
        sleep_all(&mut m, 16, 0, 10);
        assert_eq!(m.state(NodeId(5)), PowerState::Off);
        m.tick(
            10,
            &[PmEvent::BlockedNeed { router: NodeId(5) }],
            IdleInfo {
                idle: &all_idle(16),
            },
        );
        assert!(matches!(m.state(NodeId(5)), PowerState::WakingUp { .. }));
        // Twakeup = 8, requested during 10: on at 18.
        assert_eq!(m.state(NodeId(5)), PowerState::WakingUp { ready_at: 18 });
    }

    #[test]
    fn convopt_early_wakeup_targets_next_hop() {
        let mesh = Mesh::new(8, 8);
        let mut m = ConvPgManager::new(mesh, &power(), true);
        sleep_all(&mut m, 64, 0, 10);
        assert_eq!(m.state(NodeId(28)), PowerState::Off);
        // Head flit latched at R27 headed to R31: next hop R28 wakes now.
        m.tick(
            10,
            &[PmEvent::HeadArrival {
                router: NodeId(27),
                dst: NodeId(31),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(matches!(m.state(NodeId(28)), PowerState::WakingUp { .. }));
        // But not the router 2 hops ahead: conventional WU is single-hop.
        assert_eq!(m.state(NodeId(29)), PowerState::Off);
    }

    #[test]
    fn punch_wakes_routers_ahead_in_sequence() {
        let mesh = Mesh::new(8, 8);
        let mut m = PowerPunchManager::new(mesh, &power(), 4, false);
        sleep_all(&mut m, 64, 0, 10);
        for r in [25, 26, 27, 28, 29] {
            assert_eq!(m.state(NodeId(r)), PowerState::Off);
        }
        // Head latched at R26 for destination R31: target is R29.
        m.tick(
            10,
            &[PmEvent::HeadArrival {
                router: NodeId(26),
                dst: NodeId(31),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        // Fabric delivers one hop per cycle: 26 notified at tick 10 (local
        // generation), 27 at 11, 28 at 12, 29 at 13.
        assert!(matches!(m.state(NodeId(26)), PowerState::WakingUp { .. }));
        assert_eq!(m.state(NodeId(27)), PowerState::Off);
        m.tick(
            11,
            &[],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(matches!(m.state(NodeId(27)), PowerState::WakingUp { .. }));
        m.tick(
            12,
            &[],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(matches!(m.state(NodeId(28)), PowerState::WakingUp { .. }));
        m.tick(
            13,
            &[],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert_eq!(
            m.state(NodeId(29)),
            PowerState::WakingUp { ready_at: 13 + 8 }
        );
        // R30 (beyond the 3-hop target) stays asleep.
        assert_eq!(m.state(NodeId(30)), PowerState::Off);
        assert!(m.counters().punch_hops >= 3);
    }

    #[test]
    fn forewarned_router_defers_sleep() {
        let mesh = Mesh::new(8, 8);
        let mut m = PowerPunchManager::new(mesh, &power(), 4, false);
        // Notify R27 via a punch from R26 while everything is still on.
        m.tick(
            0,
            &[PmEvent::HeadArrival {
                router: NodeId(26),
                dst: NodeId(31),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        // R27 was notified at tick 1; with window 3*4=12 it must not
        // sleep before cycle 13 even though it is idle past the timeout.
        sleep_all(&mut m, 64, 1, 10);
        assert_eq!(m.state(NodeId(27)), PowerState::On, "forewarned");
        // An un-notified far-away router slept long ago.
        assert_eq!(m.state(NodeId(60)), PowerState::Off);
        sleep_all(&mut m, 64, 11, 10);
        assert_eq!(m.state(NodeId(27)), PowerState::Off, "window expired");
    }

    #[test]
    fn ni_slack_wakes_local_router_on_future_injection() {
        let mesh = Mesh::new(8, 8);
        let mut m = PowerPunchManager::new(mesh, &power(), 4, true);
        sleep_all(&mut m, 64, 0, 10);
        m.tick(
            10,
            &[PmEvent::FutureInjection { node: NodeId(24) }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(matches!(m.state(NodeId(24)), PowerState::WakingUp { .. }));
        // Signal-only scheme ignores slack 2.
        let mut s = PowerPunchManager::new(mesh, &power(), 4, false);
        sleep_all(&mut s, 64, 0, 10);
        s.tick(
            10,
            &[PmEvent::FutureInjection { node: NodeId(24) }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert_eq!(s.state(NodeId(24)), PowerState::Off);
    }

    #[test]
    fn tracing_buffers_punch_emissions_and_deliveries() {
        let mesh = Mesh::new(8, 8);
        let mut m = PowerPunchManager::new(mesh, &power(), 4, false);
        m.set_tracing(true);
        m.tick(
            10,
            &[PmEvent::HeadArrival {
                router: NodeId(26),
                dst: NodeId(31),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        let first = m.drain_trace();
        // The emission names the resolved 3-hop target R29; the fabric's
        // same-cycle local sweep notifies R26.
        assert!(first.iter().any(|s| s.event
            == Event::PunchEmit {
                router: NodeId(26),
                dst: NodeId(31),
                target: NodeId(29),
            }));
        assert!(first
            .iter()
            .any(|s| s.event == Event::PunchDeliver { router: NodeId(26) } && s.cycle == 10));
        // Subsequent ticks sweep the punch one hop per cycle.
        let mut delivered = Vec::new();
        for c in 11..=13 {
            m.tick(
                c,
                &[],
                IdleInfo {
                    idle: &all_idle(64),
                },
            );
            delivered.extend(m.drain_trace());
        }
        for r in [27, 28, 29] {
            assert!(
                delivered
                    .iter()
                    .any(|s| s.event == Event::PunchDeliver { router: NodeId(r) }),
                "R{r} missing from {delivered:?}"
            );
        }
        // Disabling tracing stops buffering.
        m.set_tracing(false);
        m.tick(
            14,
            &[PmEvent::HeadArrival {
                router: NodeId(0),
                dst: NodeId(7),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(m.drain_trace().is_empty());
    }

    /// Drives two identically-prepared managers through the same quiet span
    /// — one per-cycle, one via `tick_quiet` — and demands identical power
    /// states and counters. The forewarning floor, wakeup promotions and
    /// sleep timeouts must all survive the closed form.
    #[test]
    fn tick_quiet_matches_per_cycle_loop() {
        let mesh = Mesh::new(8, 8);
        let idle = all_idle(64);
        let prologue = |m: &mut dyn PowerManager| {
            // Punch from R26 (sweeps 26..=29 over ticks 10..=13), a blocked
            // wakeup on R5, then let the fabric drain.
            sleep_all(m, 64, 0, 10);
            m.tick(
                10,
                &[
                    PmEvent::HeadArrival {
                        router: NodeId(26),
                        dst: NodeId(31),
                    },
                    PmEvent::BlockedNeed { router: NodeId(5) },
                ],
                IdleInfo { idle: &idle },
            );
            for c in 11..=16 {
                m.tick(c, &[], IdleInfo { idle: &idle });
            }
        };
        let make: [fn(Mesh) -> Box<dyn PowerManager>; 3] = [
            |m| Box::new(PowerPunchManager::new(m, &PowerConfig::default(), 4, true)),
            |m| Box::new(ConvPgManager::new(m, &PowerConfig::default(), true)),
            |m| Box::new(ConvPgManager::new(m, &PowerConfig::default(), false)),
        ];
        for mk in make {
            let mut slow = mk(mesh);
            let mut fast = mk(mesh);
            prologue(slow.as_mut());
            prologue(fast.as_mut());
            assert_eq!(fast.next_event_at(17), slow.next_event_at(17));
            for c in 17..80 {
                slow.tick(c, &[], IdleInfo { idle: &idle });
            }
            fast.tick_quiet(17, 80, IdleInfo { idle: &idle });
            for r in 0..64 {
                assert_eq!(
                    slow.state(NodeId(r)),
                    fast.state(NodeId(r)),
                    "router {r} diverged under {:?}",
                    slow.kind()
                );
            }
            assert_eq!(slow.counters(), fast.counters(), "{:?}", slow.kind());
        }
    }

    /// While punches are still sweeping, the horizon must be immediate (no
    /// skipping over in-flight sideband activity).
    #[test]
    fn busy_fabric_pins_horizon_to_now() {
        let mesh = Mesh::new(8, 8);
        let mut m = PowerPunchManager::new(mesh, &power(), 4, false);
        sleep_all(&mut m, 64, 0, 10);
        m.tick(
            10,
            &[PmEvent::HeadArrival {
                router: NodeId(26),
                dst: NodeId(31),
            }],
            IdleInfo {
                idle: &all_idle(64),
            },
        );
        assert!(m.pending_punches() > 0);
        assert_eq!(m.next_event_at(11), Some(11));
    }

    #[test]
    fn scheme_kinds_are_reported() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(
            ConvPgManager::new(mesh, &power(), false).kind(),
            SchemeKind::ConvPg
        );
        assert_eq!(
            ConvPgManager::new(mesh, &power(), true).kind(),
            SchemeKind::ConvOptPg
        );
        assert_eq!(
            PowerPunchManager::new(mesh, &power(), 4, false).kind(),
            SchemeKind::PowerPunchSignal
        );
        assert_eq!(
            PowerPunchManager::new(mesh, &power(), 4, true).kind(),
            SchemeKind::PowerPunchFull
        );
    }
}
