//! The scheme registry: the single place where a [`SchemeKind`] is bound
//! to the constructor of its [`PowerManager`].
//!
//! Every other scheme-indexed surface in the workspace is *derived* from
//! scheme metadata rather than re-enumerated:
//!
//! * [`SchemeKind::METAS`] (in `punchsim-types`) carries the data half —
//!   tag, paper label, description, and power-model profile;
//! * [`REGISTRY`] (here) carries the behavior half — one constructor per
//!   scheme, in [`SchemeKind::ALL`] order;
//! * `PowerModel::for_scheme` / `AreaModel::for_scheme` (in
//!   `punchsim-power`) apply the metadata's power profile.
//!
//! Adding a scheme therefore means: one enum variant, one `METAS` row, one
//! constructor here — the CLI `--scheme` parser, `list-schemes`, campaign
//! tags, the verify scenario factory, and cmp's scheme table all pick it
//! up without edits.

use punchsim_noc::{AlwaysOn, PowerManager};
use punchsim_types::{SchemeKind, SchemeMeta, SimConfig, SimError, Substrate};

use crate::manager::{ConvPgManager, PowerPunchManager};
use crate::rivals::{RingRouterManager, SdmCircuitManager};

/// Constructor signature for a scheme's power manager. The substrate is
/// passed alongside the config so schemes that only need the node count
/// (e.g. `NoPg`) do not have to materialize a routing view.
pub type SchemeCtor = fn(&SimConfig, &Substrate) -> Result<Box<dyn PowerManager>, SimError>;

/// One registered scheme: its kind plus the constructor of its manager.
/// The metadata half lives in [`SchemeKind::METAS`]; [`Self::meta`] joins
/// the two.
pub struct SchemeDescriptor {
    /// The scheme this descriptor builds.
    pub kind: SchemeKind,
    /// Builds the scheme's (unwrapped) power manager for a validated
    /// configuration.
    pub build: SchemeCtor,
}

impl SchemeDescriptor {
    /// The scheme's metadata row (tag, label, description, power profile).
    pub fn meta(&self) -> &'static SchemeMeta {
        self.kind.meta()
    }
}

fn build_nopg(_cfg: &SimConfig, topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(AlwaysOn::new(topo.nodes())))
}

fn build_conv(cfg: &SimConfig, _topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(ConvPgManager::new(
        cfg.noc.view(),
        &cfg.power,
        false,
    )))
}

fn build_convopt(cfg: &SimConfig, _topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(ConvPgManager::new(
        cfg.noc.view(),
        &cfg.power,
        true,
    )))
}

fn build_pps(cfg: &SimConfig, _topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(PowerPunchManager::new(
        cfg.noc.view(),
        &cfg.power,
        cfg.noc.hop_latency(),
        false,
    )))
}

fn build_ppf(cfg: &SimConfig, _topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(PowerPunchManager::new(
        cfg.noc.view(),
        &cfg.power,
        cfg.noc.hop_latency(),
        true,
    )))
}

fn build_sdm(cfg: &SimConfig, _topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(SdmCircuitManager::new(
        cfg.noc.view(),
        &cfg.power,
        cfg.noc.hop_latency(),
    )))
}

fn build_ring(_cfg: &SimConfig, topo: &Substrate) -> Result<Box<dyn PowerManager>, SimError> {
    Ok(Box::new(RingRouterManager::new(topo.nodes())))
}

/// The scheme registry, in [`SchemeKind::ALL`] order (pinned by test so
/// [`descriptor`] can index by discriminant).
pub const REGISTRY: [SchemeDescriptor; 7] = [
    SchemeDescriptor {
        kind: SchemeKind::NoPg,
        build: build_nopg,
    },
    SchemeDescriptor {
        kind: SchemeKind::ConvPg,
        build: build_conv,
    },
    SchemeDescriptor {
        kind: SchemeKind::ConvOptPg,
        build: build_convopt,
    },
    SchemeDescriptor {
        kind: SchemeKind::PowerPunchSignal,
        build: build_pps,
    },
    SchemeDescriptor {
        kind: SchemeKind::PowerPunchFull,
        build: build_ppf,
    },
    SchemeDescriptor {
        kind: SchemeKind::SdmCircuit,
        build: build_sdm,
    },
    SchemeDescriptor {
        kind: SchemeKind::RingRouter,
        build: build_ring,
    },
];

/// Looks up the descriptor for a scheme. Total: every [`SchemeKind`] is
/// registered.
pub fn descriptor(kind: SchemeKind) -> &'static SchemeDescriptor {
    &REGISTRY[kind as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_schemes_in_order() {
        assert_eq!(REGISTRY.len(), SchemeKind::ALL.len());
        for (i, d) in REGISTRY.iter().enumerate() {
            assert_eq!(d.kind, SchemeKind::ALL[i], "registry order mismatch");
            assert_eq!(descriptor(d.kind).kind, d.kind);
            assert_eq!(d.meta().kind, d.kind);
        }
    }

    #[test]
    fn every_constructor_builds_its_scheme() {
        for d in &REGISTRY {
            let cfg = SimConfig::with_scheme(d.kind);
            let pm = (d.build)(&cfg, &cfg.noc.topology).unwrap();
            assert_eq!(pm.kind(), d.kind, "{} built the wrong manager", d.kind);
        }
    }
}
