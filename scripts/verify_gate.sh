#!/usr/bin/env sh
# Wakeup-protocol verification gate, in three parts:
#
#   1. Fault-free proofs — the exhaustive 2x2 and 2x3 explorations of the
#      full Power Punch scheme (and conventional gating on 2x2) must prove
#      all three properties: no-lost-wakeup, no-deadlock, bounded-stall.
#
#   2. Faulty proofs — the same explorations under the per-cycle fault
#      alphabet (punch drop/corruption, WU loss, stuck-off epochs) with
#      the default two-fault budget must still prove all three: the WU
#      handshake plus watchdog escalation is the safety net the paper
#      argues makes punches a pure optimization.
#
#   3. Broken-manager counterexample — with the WU input disconnected and
#      escalation disabled, the checker must FIND a lost-wakeup
#      counterexample (exit 0 only via --expect-violation). A checker
#      that can no longer catch the bug it was built for is itself broken.
#
# Every VERIFY_*.json artifact is byte-compared against the checked-in
# bench/ baseline: the state encoding, the choice enumeration order and
# the property evaluation are part of the repo's determinism contract.
#
# Usage: scripts/verify_gate.sh [OUT_DIR]
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/verify}"
mkdir -p "$OUT"

cargo build --release -q

CLI=target/release/punchsim-cli

check() {
    # check <label> <extra flags...>: run one config, cmp its artifact.
    label="$1"; shift
    "$CLI" verify "$@" --out "$OUT/VERIFY_$label.json"
    if ! cmp "bench/VERIFY_$label.json" "$OUT/VERIFY_$label.json"; then
        echo "verify_gate: VERIFY_$label.json drifted from checked-in baseline" >&2
        exit 1
    fi
}

check 2x2_ppf_clean   --mesh 2x2 --scheme ppf
check 2x2_conv_clean  --mesh 2x2 --scheme conv
check 2x3_ppf_clean   --mesh 2x3 --scheme ppf
check 2x2_ppf_faulty  --mesh 2x2 --scheme ppf --faulty
check 2x2_conv_faulty --mesh 2x2 --scheme conv --faulty
check 2x3_ppf_faulty  --mesh 2x3 --scheme ppf --faulty
check 2x2_conv_broken --mesh 2x2 --scheme conv --broken --expect-violation \
    --replay-out "$OUT/broken-replay.jsonl" --chrome-out "$OUT/broken-replay.chrome.json"

# The broken counterexample must replay into a non-empty obs event stream.
if ! [ -s "$OUT/broken-replay.jsonl" ]; then
    echo "verify_gate: broken-manager counterexample replay produced no events" >&2
    exit 1
fi

echo "verify_gate: all explorations match checked-in baselines"
