#!/usr/bin/env sh
# Metrics-subsystem gate, in three parts:
#
#   1. Byte-identity — running the `ci` campaign with --metrics-out (which
#      forces simulation and hangs the registry off every run) must yield a
#      BENCH_ci.json byte-identical to the plain run AND to the checked-in
#      bench/baseline.json. Observation is read-only or it is a bug.
#
#   2. Exposition + coverage — `punchsim-cli metrics` must exit zero (it
#      self-validates its Prometheus exposition before printing) and its
#      trailing `# punchsim_coverage ... ratio=R` line must report the
#      tick-phase profiler attributing at least MIN_COVERAGE of wall time.
#      Anything less means a phase boundary lost its mark() call.
#
#   3. Overhead — the metrics-on campaign's aggregate cycles/sec must stay
#      within MAX_LOSS of the metrics-off run (default 3%). The disabled
#      path is compiled out to one branch per phase boundary; the enabled
#      path is a handful of counter bumps. Neither may grow a hot loop.
#
# Usage: scripts/metrics_gate.sh [OUT_DIR] [MIN_COVERAGE] [MAX_LOSS]
# Defaults match the CI bench-smoke job. Honors PP_FAST like every other
# campaign entry point (bench/baseline.json is the ci suite under PP_FAST=1).
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/metrics}"
MIN_COVERAGE="${2:-0.90}"
MAX_LOSS="${3:-0.97}"

cargo build --release -q

target/release/punchsim-cli campaign --suite ci --name ci \
    --out "$OUT/plain" --no-cache
target/release/punchsim-cli campaign --suite ci --name ci \
    --out "$OUT/metered" --no-cache --metrics-out "$OUT/metered/campaign.prom"

if ! cmp "$OUT/plain/BENCH_ci.json" "$OUT/metered/BENCH_ci.json"; then
    echo "metrics_gate: --metrics-out changed the benchmark artifact" >&2
    exit 1
fi
if ! cmp bench/baseline.json "$OUT/metered/BENCH_ci.json"; then
    echo "metrics_gate: metered ci artifact drifted from bench/baseline.json" >&2
    exit 1
fi
if [ ! -s "$OUT/metered/campaign.prom" ]; then
    echo "metrics_gate: campaign --metrics-out wrote no exposition" >&2
    exit 1
fi
echo "metrics_gate: artifacts byte-identical with and without metrics"

# The metrics command validates its own exposition and appends a coverage
# comment; a non-zero exit or a missing/low ratio both fail the gate.
target/release/punchsim-cli metrics --metrics-out "$OUT/snapshot.json" \
    > "$OUT/exposition.prom"
RATIO=$(grep '^# punchsim_coverage ' "$OUT/exposition.prom" |
    sed 's/.*ratio=//')
if [ -z "$RATIO" ]; then
    echo "metrics_gate: no punchsim_coverage line in the exposition" >&2
    exit 1
fi
awk -v r="$RATIO" -v min="$MIN_COVERAGE" 'BEGIN {
    printf "metrics_gate: phase attribution %.1f%% of wall time (floor %.0f%%)\n",
        r * 100, min * 100
    if (r < min) {
        print "metrics_gate: tick-phase profiler lost track of wall time"
        exit 1
    }
}'

# First "cycles_per_sec" in each timing sidecar is the campaign aggregate
# (per-run entries follow it).
cps() {
    grep -o '"cycles_per_sec": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}
PLAIN=$(cps "$OUT/plain/BENCH_ci.timing.json")
METERED=$(cps "$OUT/metered/BENCH_ci.timing.json")
if [ -z "$PLAIN" ] || [ -z "$METERED" ]; then
    echo "metrics_gate: missing cycles_per_sec in timing sidecars" >&2
    exit 1
fi
echo "metrics_gate: plain=$PLAIN cyc/s metered=$METERED cyc/s (floor ${MAX_LOSS}x)"
awk -v p="$PLAIN" -v m="$METERED" -v min="$MAX_LOSS" 'BEGIN {
    if (p <= 0) { print "metrics_gate: bad metrics-off throughput"; exit 1 }
    ratio = m / p
    printf "metrics_gate: metered throughput %.2fx of plain\n", ratio
    if (ratio < min) {
        printf "metrics_gate: metrics overhead exceeds %.0f%% budget\n",
            (1 - min) * 100
        exit 1
    }
}'
