#!/usr/bin/env sh
# Perf-regression gate: compare a freshly produced campaign artifact against
# the checked-in baseline. Exits non-zero when any tier-1 metric (delivered
# packets, mean latency, watchdog escalations) drifts past tolerance, when a
# baseline run disappeared, or when any run failed.
#
# Usage: scripts/bench_compare.sh [BASELINE.json] [CURRENT.json]
# Defaults match the CI bench-smoke job.
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-bench/baseline.json}"
CURRENT="${2:-bench-out/BENCH_ci.json}"

for f in "$BASELINE" "$CURRENT"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: missing artifact $f" >&2
        exit 1
    fi
done

# The comparison itself (tolerances, schema checks) lives in Rust —
# punchsim::campaign::compare — so the gate needs no jq or python.
exec cargo run --release -q --bin punchsim-cli -- compare "$BASELINE" "$CURRENT"
