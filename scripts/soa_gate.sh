#!/usr/bin/env sh
# SoA busy-kernel gate: run the busy-dominated `busy` campaign twice — once
# with the structure-of-arrays busy-tick kernel (the default) and once with
# `--struct-tick` (the per-router struct-scan reference) — then enforce the
# two properties the kernel is sold on:
#
#   1. The benchmark artifacts are byte-identical: the bitset sweep must
#      never change observable results, only wall-clock.
#   2. The SoA path's aggregate cycles/sec is at least MIN_RATIO x the
#      struct path's, from the `.timing.json` sidecars. The suite's 16x16
#      and 32x32 meshes are where the per-tick sweep cost dominates; the
#      gate trips at 1.5x, far above noise but well below the win the
#      kernel must deliver at those sizes.
#
# Usage: scripts/soa_gate.sh [OUT_DIR] [MIN_RATIO]
# Defaults match the CI bench-smoke job. Honors PP_FAST like every other
# campaign entry point.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/soa}"
MIN_RATIO="${2:-1.5}"

cargo build --release -q

target/release/punchsim-cli campaign --suite busy --name busy \
    --out "$OUT/soa" --no-cache
target/release/punchsim-cli campaign --suite busy --name busy \
    --out "$OUT/struct" --no-cache --struct-tick

if ! cmp "$OUT/soa/BENCH_busy.json" "$OUT/struct/BENCH_busy.json"; then
    echo "soa_gate: the SoA kernel changed the benchmark artifact" >&2
    exit 1
fi
echo "soa_gate: artifacts byte-identical across busy kernels"

# First "cycles_per_sec" in each timing sidecar is the campaign aggregate
# (per-run entries follow it).
cps() {
    grep -o '"cycles_per_sec": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}
SOA=$(cps "$OUT/soa/BENCH_busy.timing.json")
STRUCT=$(cps "$OUT/struct/BENCH_busy.timing.json")
if [ -z "$SOA" ] || [ -z "$STRUCT" ]; then
    echo "soa_gate: missing cycles_per_sec in timing sidecars" >&2
    exit 1
fi

echo "soa_gate: soa=$SOA cyc/s struct=$STRUCT cyc/s (floor ${MIN_RATIO}x)"
awk -v s="$SOA" -v r="$STRUCT" -v min="$MIN_RATIO" 'BEGIN {
    if (r <= 0) { print "soa_gate: bad struct-path throughput"; exit 1 }
    ratio = s / r
    printf "soa_gate: speedup %.2fx\n", ratio
    if (ratio < min) {
        printf "soa_gate: SoA kernel below %.2fx floor\n", min
        exit 1
    }
}'
