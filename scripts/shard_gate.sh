#!/usr/bin/env sh
# Shard-determinism gate: rerun the busy-dominated `busy` campaign at
# several `--shards` counts and require every benchmark artifact to be
# byte-identical to the single-shard run. Sharding is an execution detail
# like `--threads` — the two-phase tick (parallel per-shard compute, then
# a serial commit in router order) must be bit-exact for any shard count,
# and this gate is where that promise is enforced end to end.
#
# Usage: scripts/shard_gate.sh [OUT_DIR] [SHARD_COUNTS]
# SHARD_COUNTS is a space-separated list compared against the "1" run
# (default "2 4"; every count must fit the suite's smallest mesh rows).
# Honors PP_FAST like every other campaign entry point.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/shards}"
COUNTS="${2:-2 4}"

cargo build --release -q

target/release/punchsim-cli campaign --suite busy --name busy \
    --out "$OUT/s1" --no-cache --shards 1

for n in $COUNTS; do
    target/release/punchsim-cli campaign --suite busy --name busy \
        --out "$OUT/s$n" --no-cache --shards "$n"
    if ! cmp "$OUT/s1/BENCH_busy.json" "$OUT/s$n/BENCH_busy.json"; then
        echo "shard_gate: --shards $n changed the benchmark artifact" >&2
        exit 1
    fi
    echo "shard_gate: --shards $n byte-identical to --shards 1"
done

echo "shard_gate: artifacts byte-identical across shard counts (1 $COUNTS)"
