#!/usr/bin/env sh
# Shard gate, in three parts:
#
#   1. Determinism — rerun the busy-dominated `busy` campaign at several
#      `--shards` counts and require every benchmark artifact to be
#      byte-identical to the single-shard run. Sharding is an execution
#      detail like `--threads` — the two-phase tick (parallel per-shard
#      compute, then a serial commit in router order) must be bit-exact
#      for any shard count. Since the persistent worker pool became the
#      default executor this part also reruns the largest shard count
#      under PP_SPAWN_TICK=1 (the spawn-per-tick reference executor) and
#      demands the same bytes: pool vs spawn is a scheduling detail too.
#
#   2. Pool speedup — the `pool` suite (one PowerPunchFull 32x32 run at
#      moderate, non-saturated busy load) at --shards 4 must be at least
#      MIN_SPEEDUP faster in cycles/sec on the pooled executor than under
#      per-tick spawning. This is the reason the pool exists; regressing
#      it silently would make the default executor pointless.
#
#   3. Thread accounting — the pooled run's timing sidecar must report at
#      most `shards` thread creations (the pool spawns shards-1 workers
#      once, not per tick) and a non-zero pooled-tick count, proving the
#      sharded path actually took the pool.
#
# Usage: scripts/shard_gate.sh [OUT_DIR] [SHARD_COUNTS] [MIN_SPEEDUP]
# SHARD_COUNTS is a space-separated list compared against the "1" run
# (default "2 4"; every count must fit the suite's smallest mesh rows).
# Honors PP_FAST like every other campaign entry point.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/shards}"
COUNTS="${2:-2 4}"
MIN_SPEEDUP="${3:-1.3}"

cargo build --release -q

target/release/punchsim-cli campaign --suite busy --name busy \
    --out "$OUT/s1" --no-cache --shards 1

LAST=1
for n in $COUNTS; do
    target/release/punchsim-cli campaign --suite busy --name busy \
        --out "$OUT/s$n" --no-cache --shards "$n"
    if ! cmp "$OUT/s1/BENCH_busy.json" "$OUT/s$n/BENCH_busy.json"; then
        echo "shard_gate: --shards $n changed the benchmark artifact" >&2
        exit 1
    fi
    echo "shard_gate: --shards $n byte-identical to --shards 1"
    LAST=$n
done

# Pool vs spawn-per-tick reference at the largest shard count: same bytes.
PP_SPAWN_TICK=1 target/release/punchsim-cli campaign --suite busy \
    --name busy --out "$OUT/spawn$LAST" --no-cache --shards "$LAST"
if ! cmp "$OUT/s$LAST/BENCH_busy.json" "$OUT/spawn$LAST/BENCH_busy.json"; then
    echo "shard_gate: PP_SPAWN_TICK=1 changed the --shards $LAST artifact" >&2
    exit 1
fi
echo "shard_gate: pooled and spawn-per-tick executors byte-identical (--shards $LAST)"

echo "shard_gate: artifacts byte-identical across shard counts (1 $COUNTS)"

# --- Part 2: the pool must actually be faster than per-tick spawning. ---

POOL_SHARDS=4
target/release/punchsim-cli campaign --suite pool --name pool \
    --out "$OUT/pool" --no-cache --shards "$POOL_SHARDS"
PP_SPAWN_TICK=1 target/release/punchsim-cli campaign --suite pool \
    --name pool --out "$OUT/pool-spawn" --no-cache --shards "$POOL_SHARDS"
if ! cmp "$OUT/pool/BENCH_pool.json" "$OUT/pool-spawn/BENCH_pool.json"; then
    echo "shard_gate: pool-suite artifacts diverged between executors" >&2
    exit 1
fi

# First "cycles_per_sec" in each timing sidecar is the campaign aggregate.
cps() {
    grep -o '"cycles_per_sec": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}
POOLED=$(cps "$OUT/pool/BENCH_pool.timing.json")
SPAWNED=$(cps "$OUT/pool-spawn/BENCH_pool.timing.json")
if [ -z "$POOLED" ] || [ -z "$SPAWNED" ]; then
    echo "shard_gate: missing cycles_per_sec in pool timing sidecars" >&2
    exit 1
fi
echo "shard_gate: pooled=$POOLED cyc/s spawn-per-tick=$SPAWNED cyc/s" \
    "(floor ${MIN_SPEEDUP}x)"
awk -v p="$POOLED" -v s="$SPAWNED" -v min="$MIN_SPEEDUP" 'BEGIN {
    if (s <= 0) { print "shard_gate: bad spawn-per-tick throughput"; exit 1 }
    ratio = p / s
    printf "shard_gate: pooled executor %.2fx of spawn-per-tick\n", ratio
    if (ratio < min) {
        printf "shard_gate: pool speedup below the %.1fx floor\n", min
        exit 1
    }
}'

# --- Part 3: pool-era thread accounting in the timing sidecar. ---

SPAWNS=$(grep -o '"spawn_count": [0-9]*' "$OUT/pool/BENCH_pool.timing.json" |
    head -1 | awk '{print $2}')
TICKS=$(grep -o '"pool_ticks": [0-9]*' "$OUT/pool/BENCH_pool.timing.json" |
    head -1 | awk '{print $2}')
if [ -z "$SPAWNS" ] || [ -z "$TICKS" ]; then
    echo "shard_gate: missing pool counters in the timing sidecar" >&2
    exit 1
fi
if [ "$SPAWNS" -gt "$POOL_SHARDS" ]; then
    echo "shard_gate: pooled run created $SPAWNS threads (cap $POOL_SHARDS)" >&2
    exit 1
fi
if [ "$TICKS" -eq 0 ]; then
    echo "shard_gate: pooled run reports zero pool ticks" >&2
    exit 1
fi
echo "shard_gate: pooled run created $SPAWNS threads over $TICKS pooled ticks"
