#!/usr/bin/env sh
# Substrate no-drift gate, in two halves:
#
#   1. Baseline identity — the default-substrate `ci` suite (8x8 XY mesh)
#      must produce a BENCH_ci.json byte-identical to the checked-in
#      bench/baseline.json. The topology/routing trait layer is supposed
#      to be *invisible* on the default substrate: same RunSpec ids, same
#      content hashes, same artifact bytes. Any diff here means the
#      refactor leaked into observable behavior.
#
#   2. Substrate determinism — the non-default `substrate` suite (torus,
#      YX, west-first) run twice against fresh stores at different worker
#      counts must produce byte-identical BENCH_substrate.json artifacts.
#      Derived codebooks and non-XY routing get no determinism discount.
#
#   3. Scheme-registry identity — the `schemes` suite (one run per
#      pre-registry scheme: nopg, conv, convopt, pps, ppf) must produce a
#      BENCH_schemes.json byte-identical to the checked-in
#      bench/baseline_schemes.json. The pluggable scheme registry and the
#      per-scheme power model are supposed to be invisible for these five
#      schemes: `PowerModel::for_scheme` must be bit-identical to
#      `default_45nm()` wherever the profile is BASELINE, and registering
#      new schemes (sdm, ring) must not perturb the old ones.
#
# Usage: scripts/no_drift.sh [OUT_DIR]
# Honors PP_FAST like every other campaign entry point; CI runs it with
# PP_FAST=1 (bench/baseline.json is the ci suite under PP_FAST=1).
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/no-drift}"

cargo build --release -q

target/release/punchsim-cli campaign --suite ci --name ci \
    --out "$OUT/ci" --no-cache
if ! cmp bench/baseline.json "$OUT/ci/BENCH_ci.json"; then
    echo "no_drift: default-substrate ci artifact drifted from bench/baseline.json" >&2
    exit 1
fi
echo "no_drift: ci artifact byte-identical to the checked-in baseline"

target/release/punchsim-cli campaign --suite substrate --name substrate \
    --out "$OUT/sub-a" --no-cache --threads 4
target/release/punchsim-cli campaign --suite substrate --name substrate \
    --out "$OUT/sub-b" --no-cache --threads 1
if ! cmp "$OUT/sub-a/BENCH_substrate.json" "$OUT/sub-b/BENCH_substrate.json"; then
    echo "no_drift: substrate suite not byte-stable across runs/thread counts" >&2
    exit 1
fi
echo "no_drift: substrate artifacts byte-identical across fresh recomputes"

target/release/punchsim-cli campaign --suite schemes --name schemes \
    --out "$OUT/schemes" --no-cache
if ! cmp bench/baseline_schemes.json "$OUT/schemes/BENCH_schemes.json"; then
    echo "no_drift: pre-registry scheme artifacts drifted from bench/baseline_schemes.json" >&2
    exit 1
fi
echo "no_drift: pre-registry scheme artifacts byte-identical to the checked-in baseline"
