#!/usr/bin/env sh
# Fast-path speedup gate: run the idle-dominated `fastpath` campaign twice —
# once with the quiescence fast-forward kernel (the default) and once with
# `--naive-tick` (the cycle-by-cycle reference) — then enforce the two
# properties the kernel is sold on:
#
#   1. The benchmark artifacts are byte-identical: skip-ahead must never
#      change observable results, only wall-clock.
#   2. The fast path's aggregate cycles/sec is at least MIN_RATIO x the
#      naive path's, from the `.timing.json` sidecars. The suite is sized
#      so the healthy margin is ~2x; the gate trips at 1.5x, far above
#      noise but well below the win the kernel must deliver.
#
# Usage: scripts/fastpath_gate.sh [OUT_DIR] [MIN_RATIO]
# Defaults match the CI bench-smoke job. Honors PP_FAST like every other
# campaign entry point.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-bench-out/fastpath}"
MIN_RATIO="${2:-1.5}"

cargo build --release -q

target/release/punchsim-cli campaign --suite fastpath --name fastpath \
    --out "$OUT/fast" --no-cache
target/release/punchsim-cli campaign --suite fastpath --name fastpath \
    --out "$OUT/naive" --no-cache --naive-tick

if ! cmp "$OUT/fast/BENCH_fastpath.json" "$OUT/naive/BENCH_fastpath.json"; then
    echo "fastpath_gate: fast-forward changed the benchmark artifact" >&2
    exit 1
fi
echo "fastpath_gate: artifacts byte-identical across tick modes"

# First "cycles_per_sec" in each timing sidecar is the campaign aggregate
# (per-run entries follow it).
cps() {
    grep -o '"cycles_per_sec": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}
FAST=$(cps "$OUT/fast/BENCH_fastpath.timing.json")
NAIVE=$(cps "$OUT/naive/BENCH_fastpath.timing.json")
if [ -z "$FAST" ] || [ -z "$NAIVE" ]; then
    echo "fastpath_gate: missing cycles_per_sec in timing sidecars" >&2
    exit 1
fi

echo "fastpath_gate: fast=$FAST cyc/s naive=$NAIVE cyc/s (floor ${MIN_RATIO}x)"
awk -v f="$FAST" -v n="$NAIVE" -v min="$MIN_RATIO" 'BEGIN {
    if (n <= 0) { print "fastpath_gate: bad naive throughput"; exit 1 }
    ratio = f / n
    printf "fastpath_gate: speedup %.2fx\n", ratio
    if (ratio < min) {
        printf "fastpath_gate: fast path below %.2fx floor\n", min
        exit 1
    }
}'
