#!/usr/bin/env sh
# Tier-1 gate: exactly what CI and the roadmap require, runnable offline.
# The workspace has no external dependencies, so no network is needed.
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release --workspace

echo "== tier 1: cargo test -q =="
cargo test -q --workspace

# Clippy is advisory locally (the toolchain component may be absent) but
# enforced in CI with -D warnings.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping =="
fi

echo "tier 1 OK"
