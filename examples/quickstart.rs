//! Quickstart: run one network under Power Punch and print the headline
//! numbers next to the No-PG baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use punchsim::prelude::*;
use punchsim::stats::Table;

fn main() {
    let pm = PowerModel::default_45nm();
    let mut table = Table::new([
        "scheme",
        "avg latency (cyc)",
        "blocked routers/pkt",
        "wakeup wait (cyc)",
        "router off %",
        "static energy saved %",
    ]);
    for scheme in SchemeKind::EVALUATED {
        // An 8x8 mesh (Table 2 of the paper) under light uniform traffic.
        let cfg = SimConfig::with_scheme(scheme);
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
        let report = sim.run_experiment(5_000, 20_000).unwrap();
        table.row([
            scheme.label().to_string(),
            format!("{:.1}", report.avg_packet_latency()),
            format!("{:.2}", report.avg_pg_encounters()),
            format!("{:.2}", report.avg_wakeup_wait()),
            format!("{:.1}", report.off_fraction() * 100.0),
            format!("{:.1}", pm.static_savings(&report) * 100.0),
        ]);
    }
    println!("punchsim quickstart — 8x8 mesh, uniform random, 0.005 flits/node/cycle\n");
    println!("{table}");
    println!(
        "Power Punch wakes routers ahead of packets, so it keeps the No-PG\n\
         latency while saving almost as much static energy as blind gating."
    );
}
