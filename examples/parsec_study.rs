//! Full-system study: run one PARSEC-like benchmark on the 64-core MESI CMP
//! under all four schemes (the per-benchmark slice of Figures 7-11).
//!
//! ```sh
//! cargo run --release --example parsec_study [benchmark]
//! ```
//!
//! `benchmark` is one of: blackscholes bodytrack canneal dedup ferret
//! fluidanimate swaptions x264 (default: dedup).

use punchsim::prelude::*;
use punchsim::stats::Table;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dedup".into());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}; using dedup");
            Benchmark::Dedup
        });
    let pm = PowerModel::default_45nm();
    println!("full-system run of `{bench}` on a 64-core 8x8 CMP (this takes a minute)...\n");
    let mut table = Table::new([
        "scheme",
        "exec cycles",
        "exec vs No-PG",
        "pkt latency",
        "blocked/pkt",
        "wait cyc/pkt",
        "static saved %",
    ]);
    let mut base_exec = 0.0;
    for scheme in SchemeKind::EVALUATED {
        let report = CmpSim::new(CmpConfig::new(bench, scheme)).run();
        assert!(report.completed, "{bench} under {scheme} did not finish");
        if scheme == SchemeKind::NoPg {
            base_exec = report.exec_cycles as f64;
        }
        table.row([
            scheme.label().to_string(),
            report.exec_cycles.to_string(),
            format!(
                "{:+.2}%",
                (report.exec_cycles as f64 / base_exec - 1.0) * 100.0
            ),
            format!("{:.1}", report.net.avg_packet_latency()),
            format!("{:.2}", report.net.avg_pg_encounters()),
            format!("{:.2}", report.net.avg_wakeup_wait()),
            format!("{:.1}", pm.static_savings(&report.net) * 100.0),
        ]);
    }
    println!("{table}");
}
