//! Reproduces Table 1 of the paper: every distinct punch-signal target set
//! on the X+ link of router 27 of an 8x8 mesh for 3-hop punches, with its
//! codeword — plus the wire widths of §4.1 step 5 and the §6.6 area cost.
//!
//! ```sh
//! cargo run --release --example punch_table
//! ```

use punchsim::core::Codebook;
use punchsim::power::AreaModel;
use punchsim::stats::Table;
use punchsim::types::{Direction, Mesh, NodeId};

fn main() {
    let mesh = Mesh::new(8, 8);
    let cb = Codebook::enumerate(mesh, 3);
    let link = cb
        .link(NodeId(27), Direction::East)
        .expect("R27 has an eastern neighbour");

    println!(
        "Table 1 — all distinct punch-signal target sets on the X+ link of R27\n\
         (8x8 mesh, 3-hop punches); codeword 0 is the idle wire.\n"
    );
    let mut t = Table::new(["#", "set of targeted routers", "codeword"]);
    for (i, set) in link.sets().iter().enumerate() {
        let code = link.encode(set).expect("enumerated set encodes");
        t.row([(i + 1).to_string(), set.to_string(), format!("{code:05b}")]);
    }
    println!("{t}");
    println!(
        "{} distinct sets -> {} bits per X link (paper: 22 sets, 5 bits)\n",
        link.set_count(),
        link.width_bits()
    );

    let mut w = Table::new(["punch depth H", "X-link bits", "Y-link bits"]);
    for h in 2..=4 {
        let c = Codebook::enumerate(mesh, h);
        w.row([
            h.to_string(),
            c.max_x_width().to_string(),
            c.max_y_width().to_string(),
        ]);
    }
    println!("wire widths by punch depth (§4.1 step 5):\n{w}");

    let area = AreaModel::default_45nm();
    println!(
        "area overhead of the H=3 punch network vs conventional PG (§6.6): {:.1}%",
        area.punch_overhead(5, 2) * 100.0
    );
}
