//! Scalability study (§6.6(2)): Power Punch's latency advantage over
//! ConvOpt-PG grows with mesh size at a fixed light load, because the
//! conventional scheme's cumulative wakeup latency grows with hop count
//! while punch signals always stay H hops ahead.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use punchsim::prelude::*;
use punchsim::stats::Table;

fn main() {
    let rate = 0.01; // flits/node/cycle, as in the paper's §6.6 example
    let mut t = Table::new([
        "mesh",
        "No-PG lat",
        "ConvOpt lat",
        "PP-PG lat",
        "PP-PG reduction vs ConvOpt",
    ]);
    for (w, h) in [(4u16, 4u16), (8, 8), (16, 16)] {
        let run = |scheme| {
            let mut cfg = SimConfig::with_scheme(scheme);
            cfg.noc.topology = Mesh::new(w, h).into();
            let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, rate);
            sim.run_experiment(4_000, 12_000)
                .unwrap()
                .avg_packet_latency()
        };
        let no = run(SchemeKind::NoPg);
        let conv = run(SchemeKind::ConvOptPg);
        let pp = run(SchemeKind::PowerPunchFull);
        t.row([
            format!("{w}x{h}"),
            format!("{no:.1}"),
            format!("{conv:.1}"),
            format!("{pp:.1}"),
            format!("{:.1}%", (1.0 - pp / conv) * 100.0),
        ]);
    }
    println!(
        "scalability at {rate} flits/node/cycle, uniform random\n\
         (paper §6.6: PP-PG reduces latency vs ConvOpt by 43.4% / 54.9% / 69.1%)\n"
    );
    println!("{t}");
}
