//! Load sweep over a synthetic pattern (one panel of Figure 12): packet
//! latency and router static power from zero load toward saturation.
//!
//! ```sh
//! cargo run --release --example synthetic_sweep [pattern]
//! ```
//!
//! `pattern` is `uniform`, `transpose` or `bitcomp` (default: uniform).

use punchsim::prelude::*;
use punchsim::stats::Table;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "uniform".into());
    let pattern = match arg.as_str() {
        "transpose" => TrafficPattern::Transpose,
        "bitcomp" => TrafficPattern::BitComplement,
        _ => TrafficPattern::UniformRandom,
    };
    let pm = PowerModel::default_45nm();
    let schemes = [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchFull,
    ];
    let mut table = Table::new([
        "load (flits/node/cyc)",
        "No-PG lat",
        "ConvOpt lat",
        "PP-PG lat",
        "No-PG W",
        "ConvOpt W",
        "PP-PG W",
    ]);
    println!("sweeping {pattern} on an 8x8 mesh (Figure 12 panel)...");
    for &rate in &[0.0025, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.20] {
        let mut row = vec![format!("{rate:.4}")];
        let mut watts = Vec::new();
        for scheme in schemes {
            let cfg = SimConfig::with_scheme(scheme);
            let mut sim = SyntheticSim::new(cfg, pattern, rate);
            let r = sim.run_experiment(4_000, 12_000).unwrap();
            row.push(format!("{:.1}", r.avg_packet_latency()));
            watts.push(format!("{:.2}", pm.static_power_watts(&r)));
        }
        row.extend(watts);
        table.row(row);
    }
    println!("\n{table}");
    println!(
        "The ConvOpt latency column shows the paper's \"power-gating curve\";\n\
         PowerPunch-PG tracks No-PG across the whole load range while its\n\
         static power tracks ConvOpt."
    );
}
