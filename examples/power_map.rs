//! Spatial view: an ASCII heatmap of how often each router is powered off
//! under an asymmetric (hotspot) workload — routers on hot paths stay on,
//! the rest sleep almost permanently. Shows Power Punch gating following
//! the traffic's spatial structure.
//!
//! ```sh
//! cargo run --release --example power_map
//! ```

use punchsim::prelude::*;

fn main() {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(8, 8).into();
    // All traffic converges on R27 (the paper's Figure 4 focus router).
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::Hotspot(NodeId(27)), 0.004);
    let report = sim.run_experiment(3_000, 20_000).unwrap();

    println!(
        "router off-time under a hotspot at R27 (PowerPunch-PG, {} cycles)\n",
        report.cycles
    );
    println!("legend: '#' ~always on  '+' mostly on  '.' mostly off  ' ' ~always off\n");
    let mesh = Mesh::new(8, 8);
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let n = mesh.node(punchsim::types::Coord::new(x, y));
            let off = report.pg.off_cycles[n.index()] as f64 / report.cycles as f64;
            let c = match off {
                o if o < 0.25 => '#',
                o if o < 0.50 => '+',
                o if o < 0.85 => '.',
                _ => ' ',
            };
            row.push(c);
            row.push(' ');
        }
        println!("   {row}");
    }
    let total_off = report.off_fraction() * 100.0;
    println!("\nnetwork-wide off fraction: {total_off:.1}%");
    println!(
        "latency {:.1} cycles, wakeup waits {:.2} cycles/packet",
        report.avg_packet_latency(),
        report.avg_wakeup_wait()
    );
}
