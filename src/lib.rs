//! # punchsim
//!
//! A from-scratch, cycle-accurate network-on-chip simulator reproducing
//! *Power Punch: Towards Non-blocking Power-gating of NoC Routers*
//! (Chen, Zhu, Pedram, Pinkston — HPCA 2015).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`types`] — mesh geometry, XY routing, configuration (Table 2)
//! * [`noc`] — the cycle-accurate router/network substrate
//! * [`core`] — the paper's contribution: power-gating controllers and the
//!   Power Punch punch-signal fabric and codebook (Table 1)
//! * [`obs`] — cycle-resolved observability: structured event tracing,
//!   flight recording, per-interval sampling, and JSONL/CSV/Chrome-trace
//!   exporters (load the latter in Perfetto)
//! * [`faults`] — deterministic fault injection for the power-gating
//!   machinery (punch drops/corruption, stuck-off routers)
//! * [`metrics`] — typed metric registry, log-bucketed latency
//!   histograms, per-router counter planes, tick-phase profiler, and
//!   Prometheus/JSON exposition
//! * [`power`] — DSENT-like router energy model and accounting
//! * [`traffic`] — synthetic traffic patterns and injection processes
//! * [`cmp`] — MESI-directory CMP substrate standing in for gem5+PARSEC
//! * [`campaign`] — parallel campaign runner, content-hashed result store
//!   and machine-readable `BENCH_*.json` artifacts (the CI perf gate)
//! * [`stats`] — counters, histograms and table rendering
//!
//! # Quickstart
//!
//! ```
//! use punchsim::prelude::*;
//!
//! let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
//! cfg.noc.topology = Mesh::new(4, 4).into();
//! let mut sim = SyntheticSim::new(
//!     cfg,
//!     TrafficPattern::UniformRandom,
//!     0.02, // flits/node/cycle
//! );
//! sim.run(5_000).unwrap();
//! let report = sim.report();
//! assert!(report.stats.packets_delivered > 0);
//! ```

pub use punchsim_campaign as campaign;
pub use punchsim_cmp as cmp;
pub use punchsim_core as core;
pub use punchsim_faults as faults;
pub use punchsim_metrics as metrics;
pub use punchsim_noc as noc;
pub use punchsim_obs as obs;
pub use punchsim_power as power;
pub use punchsim_stats as stats;
pub use punchsim_traffic as traffic;
pub use punchsim_types as types;
pub use punchsim_verify as verify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use punchsim_campaign::{
        CampaignReport, Metrics, ObserveOpts, Observed, Outcome, RunRecord, RunSpec, Runner, Store,
        Workload,
    };
    pub use punchsim_cmp::{Benchmark, CmpConfig, CmpReport, CmpSim};
    pub use punchsim_core::build_power_manager;
    pub use punchsim_faults::{FaultInjector, FaultStats};
    pub use punchsim_metrics::{LogHistogram, Phase, PhaseProfiler, Plane, Registry};
    pub use punchsim_noc::{BusyKernel, Network, NetworkReport, PowerManager, ShardExec, TickMode};
    pub use punchsim_obs::{Event, EventSink, RingSink, Sampler, Stamped, VecSink};
    pub use punchsim_power::{EnergyBreakdown, PowerModel};
    pub use punchsim_traffic::{SyntheticSim, TrafficPattern};
    pub use punchsim_types::{
        CMesh, ConfigError, Cycle, Direction, FaultConfig, Mesh, NocConfig, NodeId, PacketId, Port,
        PowerConfig, RouteView, RoutingKind, SchemeKind, SimConfig, SimError, SimRng, StallReport,
        StuckEpoch, Substrate, Topology, Torus, VnetId, WatchdogConfig,
    };
    pub use punchsim_verify::{run_verification, VerifyConfig, VerifyOutcome};
}
