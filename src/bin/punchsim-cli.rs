//! `punchsim` command-line interface: run any experiment without writing
//! Rust.
//!
//! ```text
//! punchsim-cli sweep    [--pattern P] [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
//! punchsim-cli parsec   [--benchmark B] [--scheme S] [--instr N]
//! punchsim-cli table1
//! punchsim-cli schemes  [--mesh WxH] [--rate R]
//! punchsim-cli faults   [--scheme S] [--mesh WxH] [--rate R] [--corrupt P] [--fault-seed N]
//! punchsim-cli campaign [--suite parsec|synth|ci] [--threads N] [--out DIR]
//!                       [--name NAME] [--seed N] [--no-cache]
//! punchsim-cli compare  BASELINE.json CURRENT.json [--tol-latency R]
//!                       [--tol-delivered R] [--tol-escalations N]
//! ```
//!
//! Schemes: `nopg`, `conv`, `convopt`, `pps` (PowerPunch-Signal),
//! `ppf` (PowerPunch-PG). Patterns: `uniform`, `transpose`, `bitcomp`,
//! `bitrev`, `shuffle`, `tornado`, `neighbor`.
//!
//! The `faults` command sweeps the punch-drop probability from 0 to 1 and
//! shows that delivery stays at 100% while only latency degrades — the
//! paper's "punches are an optimization, the WU handshake is the safety
//! net" argument, checked end to end. `--faults`, `--corrupt` and
//! `--fault-seed` also apply to `sweep`/`schemes` runs.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use punchsim::campaign::{self, compare, Json, Tolerances};
use punchsim::prelude::*;
use punchsim::stats::Table;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `campaign` and `compare` take boolean flags and positional arguments,
    // which the flag/value `Opts` grammar cannot express — they parse their
    // own argument lists.
    match cmd.as_str() {
        "campaign" => return campaign_cmd(&args[1..]),
        "compare" => return compare_cmd(&args[1..]),
        _ => {}
    }
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "sweep" => sweep(&opts),
        "parsec" => parsec(&opts),
        "table1" => table1(),
        "schemes" => schemes(&opts),
        "faults" => faults(&opts),
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("simulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  punchsim-cli sweep    [--pattern P] [--scheme S] [--mesh WxH] [--cycles N]
  punchsim-cli parsec   [--benchmark B] [--scheme S] [--instr N]
  punchsim-cli table1
  punchsim-cli schemes  [--mesh WxH] [--rate R] [--cycles N]
  punchsim-cli faults   [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
                        [--corrupt P] [--fault-seed N]
  punchsim-cli campaign [--suite parsec|synth|ci] [--threads N] [--out DIR]
                        [--name NAME] [--seed N] [--no-cache]
  punchsim-cli compare  BASELINE.json CURRENT.json [--tol-latency R]
                        [--tol-delivered R] [--tol-escalations N]

fault flags (any synthetic command):
  --faults P       drop each punch-carrying sideband event with probability P
  --corrupt P      corrupt punch codewords with probability P (wrong targets)
  --fault-seed N   seed of the fault injector's RNG stream (default 0xFA17)

campaign flags:
  --suite S        spec list: parsec, synth or ci (both; default)
  --threads N      worker threads; 0 = one per core (default)
  --out DIR        artifact directory (default bench-out)
  --name NAME      artifact name: BENCH_<NAME>.json (default: the suite)
  --seed N         campaign seed (default 0xC0FFEE)
  --no-cache       ignore the result store; simulate every spec
  PP_FAST=1 in the environment shortens every run (CI smoke mode)

schemes: nopg conv convopt pps ppf
patterns: uniform transpose bitcomp bitrev shuffle tornado neighbor
benchmarks: blackscholes bodytrack canneal dedup ferret fluidanimate swaptions x264";

struct Opts {
    pattern: TrafficPattern,
    scheme: SchemeKind,
    mesh: Mesh,
    rate: f64,
    cycles: u64,
    benchmark: Benchmark,
    instr: u64,
    fault_drop: f64,
    fault_corrupt: f64,
    fault_seed: u64,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            pattern: TrafficPattern::UniformRandom,
            scheme: SchemeKind::PowerPunchFull,
            mesh: Mesh::new(8, 8),
            rate: 0.005,
            cycles: 20_000,
            benchmark: Benchmark::Dedup,
            instr: 80_000,
            fault_drop: 0.0,
            fault_corrupt: 0.0,
            fault_seed: 0xFA17,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            match flag.as_str() {
                "--pattern" => {
                    o.pattern = TrafficPattern::from_tag(val)
                        .ok_or_else(|| format!("unknown pattern {val}"))?;
                }
                "--scheme" => {
                    o.scheme =
                        SchemeKind::from_tag(val).ok_or_else(|| format!("unknown scheme {val}"))?;
                }
                "--mesh" => {
                    let (w, h) = val
                        .split_once('x')
                        .ok_or_else(|| format!("mesh must look like 8x8, got {val}"))?;
                    let w: u16 = w.parse().map_err(|_| "bad mesh width".to_string())?;
                    let h: u16 = h.parse().map_err(|_| "bad mesh height".to_string())?;
                    o.mesh = Mesh::new(w, h);
                }
                "--rate" => {
                    o.rate = val.parse().map_err(|_| "bad rate".to_string())?;
                }
                "--cycles" => {
                    o.cycles = val.parse().map_err(|_| "bad cycle count".to_string())?;
                }
                "--instr" => {
                    o.instr = val
                        .parse()
                        .map_err(|_| "bad instruction count".to_string())?;
                }
                "--benchmark" => {
                    o.benchmark = Benchmark::ALL
                        .into_iter()
                        .find(|b| b.name() == val.as_str())
                        .ok_or_else(|| format!("unknown benchmark {val}"))?;
                }
                "--faults" => {
                    o.fault_drop = parse_prob(val)?;
                }
                "--corrupt" => {
                    o.fault_corrupt = parse_prob(val)?;
                }
                "--fault-seed" => {
                    o.fault_seed = val.parse().map_err(|_| "bad fault seed".to_string())?;
                }
                f => return Err(format!("unknown flag {f}")),
            }
        }
        Ok(o)
    }

    fn fault_config(&self, drop: f64) -> FaultConfig {
        FaultConfig {
            seed: self.fault_seed,
            drop_punch_ppm: FaultConfig::ppm(drop),
            corrupt_punch_ppm: FaultConfig::ppm(self.fault_corrupt),
            ..FaultConfig::default()
        }
    }
}

fn parse_prob(val: &str) -> Result<f64, String> {
    let p: f64 = val.parse().map_err(|_| "bad probability".to_string())?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability {p} outside 0..=1"))
    }
}

fn run_synth(opts: &Opts, scheme: SchemeKind, rate: f64) -> Result<NetworkReport, SimError> {
    run_synth_faulted(opts, scheme, rate, opts.fault_drop)
}

fn run_synth_faulted(
    opts: &Opts,
    scheme: SchemeKind,
    rate: f64,
    drop: f64,
) -> Result<NetworkReport, SimError> {
    let mut cfg = SimConfig::with_scheme(scheme);
    cfg.noc.mesh = opts.mesh;
    cfg.faults = opts.fault_config(drop);
    let mut sim = SyntheticSim::new(cfg, opts.pattern, rate);
    sim.run_experiment(opts.cycles / 4, opts.cycles)
}

fn sweep(opts: &Opts) -> Result<(), SimError> {
    let pm = PowerModel::default_45nm();
    println!(
        "load sweep: {} on {}x{} under {}",
        opts.pattern,
        opts.mesh.width(),
        opts.mesh.height(),
        opts.scheme
    );
    let mut t = Table::new(["load", "latency", "off %", "static W", "throughput"]);
    for mult in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let rate = opts.rate * mult;
        let r = run_synth(opts, opts.scheme, rate)?;
        t.row([
            format!("{rate:.4}"),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.1}", r.off_fraction() * 100.0),
            format!("{:.2}", pm.static_power_watts(&r)),
            format!("{:.4}", r.throughput()),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn schemes(opts: &Opts) -> Result<(), SimError> {
    let pm = PowerModel::default_45nm();
    println!(
        "scheme comparison: {} at {} flits/node/cycle on {}x{}",
        opts.pattern,
        opts.rate,
        opts.mesh.width(),
        opts.mesh.height()
    );
    let mut t = Table::new([
        "scheme",
        "latency",
        "blocked/pkt",
        "wait/pkt",
        "off %",
        "static saved %",
    ]);
    for scheme in SchemeKind::EVALUATED {
        let r = run_synth(opts, scheme, opts.rate)?;
        t.row([
            scheme.label().to_string(),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.2}", r.avg_pg_encounters()),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{:.1}", r.off_fraction() * 100.0),
            format!("{:.1}", pm.static_savings(&r) * 100.0),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// Sweeps punch-drop probability 0..=1 under the selected scheme: delivery
/// stays at 100% of injected packets (the WU safety net) while latency
/// degrades toward conventional gating.
fn faults(opts: &Opts) -> Result<(), SimError> {
    println!(
        "fault sweep: {} at {} flits/node/cycle on {}x{} under {} \
         (corrupt {:.2}, seed {:#x})",
        opts.pattern,
        opts.rate,
        opts.mesh.width(),
        opts.mesh.height(),
        opts.scheme,
        opts.fault_corrupt,
        opts.fault_seed,
    );
    let mut t = Table::new([
        "drop p",
        "delivered",
        "latency",
        "wait/pkt",
        "faults",
        "escalations",
        "off %",
    ]);
    for drop in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = run_synth_faulted(opts, opts.scheme, opts.rate, drop)?;
        t.row([
            format!("{drop:.2}"),
            format!("{}", r.stats.packets_delivered),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{}", r.pg.faults_injected),
            format!("{}", r.pg.escalations),
            format!("{:.1}", r.off_fraction() * 100.0),
        ]);
    }
    println!("{t}");
    println!("every run completed without a stall report: punches are an");
    println!("optimization; the WU handshake keeps the delivery guarantee.");
    Ok(())
}

fn parsec(opts: &Opts) -> Result<(), SimError> {
    let mut cfg = CmpConfig::new(opts.benchmark, opts.scheme);
    cfg.instr_per_core = opts.instr;
    cfg.warmup_instr = opts.instr / 10;
    println!(
        "full-system: {} under {} ({} instructions/core)...",
        opts.benchmark, opts.scheme, opts.instr
    );
    let r = CmpSim::new(cfg).run();
    println!("completed:        {}", r.completed);
    println!("execution cycles: {}", r.exec_cycles);
    println!("L1 miss rate:     {:.3}%", r.l1_miss_rate * 100.0);
    println!("packet latency:   {:.1} cycles", r.net.avg_packet_latency());
    println!("blocked/packet:   {:.2}", r.net.avg_pg_encounters());
    println!(
        "offered load:     {:.4} flits/node/cycle",
        r.net.offered_load
    );
    println!("router off:       {:.1}%", r.net.off_fraction() * 100.0);
    Ok(())
}

fn table1() -> Result<(), SimError> {
    use punchsim::core::Codebook;
    use punchsim::types::{Direction, NodeId};
    let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
    let link = cb.link(NodeId(27), Direction::East).expect("interior");
    let mut t = Table::new(["#", "targeted routers", "punch signal"]);
    for (i, s) in link.sets().iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            s.to_string(),
            format!("{:05b}", link.encode(s).expect("in book")),
        ]);
    }
    println!("{t}");
    println!(
        "{} sets, {} bits (paper: 22 sets, 5 bits)",
        link.set_count(),
        link.width_bits()
    );
    Ok(())
}

struct CampaignOpts {
    suite: String,
    threads: usize,
    out: PathBuf,
    name: Option<String>,
    seed: u64,
    no_cache: bool,
}

impl CampaignOpts {
    fn parse(args: &[String]) -> Result<CampaignOpts, String> {
        let mut o = CampaignOpts {
            suite: "ci".to_string(),
            threads: 0,
            out: PathBuf::from("bench-out"),
            name: None,
            seed: campaign::DEFAULT_SEED,
            no_cache: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            // --no-cache is the one boolean flag; everything else is a pair.
            if flag == "--no-cache" {
                o.no_cache = true;
                continue;
            }
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            match flag.as_str() {
                "--suite" => {
                    if !["parsec", "synth", "ci"].contains(&val.as_str()) {
                        return Err(format!("unknown suite {val}"));
                    }
                    o.suite = val.clone();
                }
                "--threads" => {
                    o.threads = val.parse().map_err(|_| "bad thread count".to_string())?;
                }
                "--out" => o.out = PathBuf::from(val),
                "--name" => o.name = Some(val.clone()),
                "--seed" => {
                    o.seed = val.parse().map_err(|_| "bad seed".to_string())?;
                }
                f => return Err(format!("unknown flag {f}")),
            }
        }
        Ok(o)
    }

    fn specs(&self) -> Vec<RunSpec> {
        match self.suite.as_str() {
            "parsec" => campaign::parsec_suite(self.seed),
            "synth" => campaign::synthetic_suite(self.seed),
            _ => campaign::ci_suite(self.seed),
        }
    }
}

fn campaign_cmd(args: &[String]) -> ExitCode {
    let opts = match CampaignOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let specs = opts.specs();
    let name = opts.name.clone().unwrap_or_else(|| opts.suite.clone());
    let runner = Runner {
        threads: opts.threads,
        store: if opts.no_cache {
            None
        } else {
            Some(Store::in_target())
        },
    };
    let threads = runner.effective_threads(specs.len());
    eprintln!(
        "campaign {name}: {} runs on {threads} thread(s){}",
        specs.len(),
        if campaign::fast_mode() {
            " [PP_FAST=1]"
        } else {
            ""
        }
    );
    let total = specs.len();
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    let outcomes = runner.run_with(&specs, &|_, outcome| {
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        match outcome {
            Outcome::Done(rec) => {
                let how = match rec.cycles_per_sec() {
                    Some(cps) => format!("{:.0} cycles/sec", cps),
                    None => "cached".to_string(),
                };
                eprintln!("[{n}/{total}] {} ({how})", rec.spec.id());
            }
            Outcome::Failed(err) => eprintln!("[{n}/{total}] FAILED {err}"),
        }
    });
    let report = CampaignReport {
        name,
        threads,
        outcomes,
        wall_nanos: started.elapsed().as_nanos() as u64,
    };
    let (main_path, timing_path) = match report.write_artifacts(&opts.out) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!(
                "error: cannot write artifacts to {}: {e}",
                opts.out.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let cached = report
        .outcomes
        .iter()
        .filter_map(Outcome::record)
        .filter(|r| r.cached)
        .count();
    println!(
        "{} runs ({cached} cached), {} failure(s), {:.1}s wall clock",
        total,
        report.failures(),
        report.wall_nanos as f64 / 1e9
    );
    println!("wrote {}", main_path.display());
    println!("wrote {}", timing_path.display());
    if report.failures() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct CompareOpts {
    baseline: PathBuf,
    current: PathBuf,
    tol: Tolerances,
}

impl CompareOpts {
    fn parse(args: &[String]) -> Result<CompareOpts, String> {
        let mut paths = Vec::new();
        let mut tol = Tolerances::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let val = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{flag}"))?;
                let v: f64 = val.parse().map_err(|_| format!("bad value for --{flag}"))?;
                match flag {
                    "tol-latency" => tol.latency_rel = v,
                    "tol-delivered" => tol.delivered_rel = v,
                    "tol-escalations" => tol.escalations_abs = v,
                    f => return Err(format!("unknown flag --{f}")),
                }
            } else {
                paths.push(PathBuf::from(arg));
            }
        }
        let [baseline, current] = <[PathBuf; 2]>::try_from(paths)
            .map_err(|_| "compare needs exactly BASELINE and CURRENT paths".to_string())?;
        Ok(CompareOpts {
            baseline,
            current,
            tol,
        })
    }
}

fn load_artifact(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn compare_cmd(args: &[String]) -> ExitCode {
    let opts = match CompareOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = load_artifact(&opts.baseline).and_then(|base| {
        let cur = load_artifact(&opts.current)?;
        compare::compare(&base, &cur, &opts.tol)
    });
    let cmp = match result {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in &cmp.run_errors {
        println!("FAILED RUN {id}");
    }
    for id in &cmp.missing {
        println!("MISSING    {id}");
    }
    for d in &cmp.deviations {
        println!("DRIFT      {d}");
    }
    for id in &cmp.extra {
        println!("note: ungated new run {id}");
    }
    if cmp.passed() {
        println!(
            "perf gate passed: {} run(s) within tolerance (latency ±{:.0}%, \
             delivered ±{:.0}%, escalations ±{})",
            cmp.checked,
            opts.tol.latency_rel * 100.0,
            opts.tol.delivered_rel * 100.0,
            opts.tol.escalations_abs
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate FAILED: {} deviation(s), {} missing run(s), {} failed run(s)",
            cmp.deviations.len(),
            cmp.missing.len(),
            cmp.run_errors.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&v)
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scheme, SchemeKind::PowerPunchFull);
        assert_eq!(o.mesh, Mesh::new(8, 8));
        assert_eq!(o.benchmark, Benchmark::Dedup);
        assert_eq!(o.fault_drop, 0.0);
        assert!(!o.fault_config(o.fault_drop).is_active());
    }

    #[test]
    fn flags_parse() {
        let o = parse(&[
            "--scheme",
            "convopt",
            "--mesh",
            "4x4",
            "--rate",
            "0.01",
            "--pattern",
            "transpose",
            "--benchmark",
            "canneal",
            "--cycles",
            "500",
            "--instr",
            "1000",
        ])
        .unwrap();
        assert_eq!(o.scheme, SchemeKind::ConvOptPg);
        assert_eq!(o.mesh, Mesh::new(4, 4));
        assert_eq!(o.rate, 0.01);
        assert_eq!(o.pattern, TrafficPattern::Transpose);
        assert_eq!(o.benchmark, Benchmark::Canneal);
        assert_eq!(o.cycles, 500);
        assert_eq!(o.instr, 1000);
    }

    #[test]
    fn fault_flags_parse_into_config() {
        let o = parse(&["--faults", "0.5", "--corrupt", "0.25", "--fault-seed", "42"]).unwrap();
        assert_eq!(o.fault_drop, 0.5);
        assert_eq!(o.fault_corrupt, 0.25);
        assert_eq!(o.fault_seed, 42);
        let f = o.fault_config(o.fault_drop);
        assert!(f.is_active());
        assert_eq!(f.drop_punch_ppm, 500_000);
        assert_eq!(f.corrupt_punch_ppm, 250_000);
        assert_eq!(f.seed, 42);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse(&["--scheme", "warp9"]).is_err());
        assert!(parse(&["--mesh", "8by8"]).is_err());
        assert!(parse(&["--mesh"]).is_err());
        assert!(parse(&["--rate", "fast"]).is_err());
        assert!(parse(&["--wormhole", "1"]).is_err());
        assert!(parse(&["--benchmark", "doom"]).is_err());
        assert!(parse(&["--faults", "1.5"]).is_err());
        assert!(parse(&["--corrupt", "-0.1"]).is_err());
        assert!(parse(&["--fault-seed", "xyz"]).is_err());
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn campaign_defaults_and_flags_parse() {
        let o = CampaignOpts::parse(&[]).unwrap();
        assert_eq!(o.suite, "ci");
        assert_eq!(o.threads, 0);
        assert_eq!(o.out, PathBuf::from("bench-out"));
        assert_eq!(o.seed, campaign::DEFAULT_SEED);
        assert!(!o.no_cache);
        assert!(!o.specs().is_empty());

        let o = CampaignOpts::parse(&strs(&[
            "--suite",
            "synth",
            "--threads",
            "3",
            "--out",
            "tmp",
            "--name",
            "pr",
            "--seed",
            "7",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(o.suite, "synth");
        assert_eq!(o.threads, 3);
        assert_eq!(o.out, PathBuf::from("tmp"));
        assert_eq!(o.name.as_deref(), Some("pr"));
        assert_eq!(o.seed, 7);
        assert!(o.no_cache);
        assert_eq!(o.specs().len(), campaign::synthetic_suite(7).len());
    }

    #[test]
    fn campaign_bad_inputs_are_rejected() {
        assert!(CampaignOpts::parse(&strs(&["--suite", "quantum"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--threads", "many"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--name"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--cache", "1"])).is_err());
    }

    #[test]
    fn compare_opts_parse() {
        let o = CompareOpts::parse(&strs(&["a.json", "b.json"])).unwrap();
        assert_eq!(o.baseline, PathBuf::from("a.json"));
        assert_eq!(o.current, PathBuf::from("b.json"));
        assert_eq!(o.tol, Tolerances::default());

        let o = CompareOpts::parse(&strs(&[
            "--tol-latency",
            "0.1",
            "a.json",
            "--tol-escalations",
            "5",
            "b.json",
        ]))
        .unwrap();
        assert_eq!(o.tol.latency_rel, 0.1);
        assert_eq!(o.tol.escalations_abs, 5.0);
        assert_eq!(o.tol.delivered_rel, Tolerances::default().delivered_rel);

        assert!(CompareOpts::parse(&strs(&["only-one.json"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "c"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "--tol-latency", "x"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "--tol-jitter", "1"])).is_err());
    }
}
