//! `punchsim` command-line interface: run any experiment without writing
//! Rust.
//!
//! ```text
//! punchsim-cli sweep    [--pattern P] [--scheme S] [--mesh WxH] [--topology T]
//!                       [--routing R] [--rate R] [--cycles N]
//! punchsim-cli parsec   [--benchmark B] [--scheme S] [--instr N]
//! punchsim-cli table1
//! punchsim-cli schemes  [--mesh WxH] [--topology T] [--routing R] [--rate R]
//! punchsim-cli faults   [--scheme S] [--mesh WxH] [--rate R] [--corrupt P] [--fault-seed N]
//!                       [--trace-out PATH] [--trace-cap N] [--metrics-out PATH]
//! punchsim-cli trace    [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
//!                       [--trace-out PATH] [--format chrome|jsonl|csv] [--trace-cap N]
//!                       [--metrics-out PATH]
//! punchsim-cli metrics  [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
//!                       [--pattern P] [--metrics-out PATH]
//! punchsim-cli list-schemes
//! punchsim-cli campaign [--suite parsec|synth|ci|fastpath|substrate|busy|pool
//!                        |rivals|schemes]
//!                       [--threads N] [--shards N] [--out DIR]
//!                       [--name NAME] [--seed N] [--no-cache] [--naive-tick]
//!                       [--struct-tick] [--sample N] [--trace-out DIR]
//!                       [--trace-cap N] [--metrics-out PATH]
//! punchsim-cli compare  BASELINE.json CURRENT.json [--tol-latency R]
//!                       [--tol-delivered R] [--tol-escalations N]
//! punchsim-cli verify   [--mesh WxH] [--scheme S] [--faulty] [--broken]
//!                       [--max-faults N] [--out PATH] [--replay-out PATH]
//! ```
//!
//! Schemes come from the scheme registry — `punchsim-cli list-schemes`
//! prints every registered tag with its paper label and a one-line
//! description (`nopg`, `conv`, `convopt`, `pps`, `ppf`, plus the rival
//! baselines `sdm` and `ring`). Patterns: `uniform`, `transpose`, `bitcomp`,
//! `bitrev`, `shuffle`, `tornado`, `neighbor`. Topologies: `mesh`
//! (default), `torus`, `cmesh:C` (concentrated mesh, C terminals per
//! router). Routings: `xy` (default), `yx`, `wf` (west-first), `nl`
//! (north-last), `nf` (negative-first); turn-model routings are rejected
//! on the torus, whose wrap links would close their cycles.
//!
//! The `faults` command sweeps the punch-drop probability from 0 to 1 and
//! shows that delivery stays at 100% while only latency degrades — the
//! paper's "punches are an optimization, the WU handshake is the safety
//! net" argument, checked end to end. `--faults`, `--corrupt` and
//! `--fault-seed` also apply to `sweep`/`schemes` runs.
//!
//! The `trace` command records one run's cycle-stamped event stream and
//! writes a trace artifact: Chrome trace-event JSON (open in Perfetto or
//! `chrome://tracing` — one power-state track per router plus punch flow
//! arrows), JSONL, or CSV.
//!
//! The `metrics` command runs one profiled busy-regime simulation and
//! prints its full metric registry as Prometheus text exposition —
//! counters, latency histograms, per-router heatmap planes and the
//! tick-phase wall-time profile — with a trailing parseable coverage
//! comment that `scripts/metrics_gate.sh` asserts on. `--metrics-out`
//! (here and on `faults`/`trace`/`campaign`) additionally writes the
//! registry snapshot to a file: Prometheus text for `.prom`/`.txt`
//! paths, JSON otherwise.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use punchsim::campaign::{self, compare, Json, Tolerances};
use punchsim::metrics::validate_exposition;
use punchsim::obs::{self, EventSink, RingSink, Stamped, VecSink};
use punchsim::prelude::*;
use punchsim::stats::Table;

/// Default flight-recorder capacity for `faults`/`campaign` dumps when
/// `--trace-cap` is not given.
const DEFAULT_DUMP_CAP: usize = 4_096;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `campaign` and `compare` take boolean flags and positional arguments,
    // which the flag/value `Opts` grammar cannot express — they parse their
    // own argument lists.
    match cmd.as_str() {
        "campaign" => return campaign_cmd(&args[1..]),
        "compare" => return compare_cmd(&args[1..]),
        "verify" => return verify_cmd(&args[1..]),
        "list-schemes" => return list_schemes(),
        _ => {}
    }
    // The `metrics` subcommand shares the flag/value grammar but defaults
    // to the busy-suite regime instead of the sweep regime.
    let defaults = if cmd == "metrics" {
        Opts::metrics_defaults()
    } else {
        Opts::defaults()
    };
    let opts = match Opts::parse_from(defaults, &args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "sweep" => sweep(&opts).map_err(sim_err),
        "parsec" => parsec(&opts).map_err(sim_err),
        "table1" => table1().map_err(sim_err),
        "schemes" => schemes(&opts).map_err(sim_err),
        "faults" => faults(&opts),
        "trace" => trace(&opts),
        "metrics" => metrics(&opts),
        other => {
            eprintln!("unknown command {other:?}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sim_err(e: SimError) -> String {
    format!("simulation error: {e}")
}

/// The full usage text: the static template plus the scheme list derived
/// from the registry, so a newly registered scheme shows up here without
/// a hand edit.
fn usage() -> String {
    let tags: Vec<&str> = SchemeKind::ALL.iter().map(|k| k.tag()).collect();
    format!(
        "{USAGE_TEMPLATE}\nschemes: {} (details: punchsim-cli list-schemes)\n{USAGE_TAIL}",
        tags.join(" ")
    )
}

const USAGE_TEMPLATE: &str = "usage:
  punchsim-cli sweep    [--pattern P] [--scheme S] [--mesh WxH] [--topology T]
                        [--routing R] [--cycles N]
  punchsim-cli parsec   [--benchmark B] [--scheme S] [--instr N]
  punchsim-cli table1
  punchsim-cli schemes  [--mesh WxH] [--topology T] [--routing R] [--rate R]
                        [--cycles N]
  punchsim-cli list-schemes
  punchsim-cli faults   [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
                        [--corrupt P] [--fault-seed N] [--trace-out PATH]
                        [--trace-cap N] [--metrics-out PATH]
  punchsim-cli trace    [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
                        [--pattern P] [--trace-out PATH] [--trace-cap N]
                        [--format chrome|jsonl|csv] [--metrics-out PATH]
  punchsim-cli metrics  [--scheme S] [--mesh WxH] [--rate R] [--cycles N]
                        [--pattern P] [--metrics-out PATH]
  punchsim-cli campaign [--suite parsec|synth|ci|fastpath|substrate|busy|pool
                         |rivals|schemes]
                        [--threads N] [--shards N] [--out DIR]
                        [--name NAME] [--seed N] [--no-cache] [--naive-tick]
                        [--struct-tick] [--sample N] [--trace-out DIR]
                        [--trace-cap N] [--metrics-out PATH]
  punchsim-cli compare  BASELINE.json CURRENT.json [--tol-latency R]
                        [--tol-delivered R] [--tol-escalations N]
  punchsim-cli verify   [--mesh WxH] [--scheme S] [--faulty] [--broken]
                        [--max-faults N] [--out PATH] [--replay-out PATH]
                        [--chrome-out PATH] [--expect-violation]

fault flags (any synthetic command):
  --faults P       drop each punch-carrying sideband event with probability P
  --corrupt P      corrupt punch codewords with probability P (wrong targets)
  --fault-seed N   seed of the fault injector's RNG stream (default 0xFA17)

trace flags:
  --trace-out PATH trace artifact path (trace: default punchsim-trace.<ext>;
                   faults: per-drop flight-recorder dumps PATH-dP.jsonl)
  --trace-cap N    flight-recorder capacity in events (trace: 0 = unbounded;
                   faults/campaign default 4096)
  --format F       trace artifact format: chrome (Perfetto; default),
                   jsonl, or csv

verify flags:
  --faulty         branch over the per-cycle fault alphabet (punch drop /
                   corruption, WU loss, stuck-off epochs)
  --broken         suppress the WU safety net and disable escalation (the
                   intentionally-broken manager; expect a counterexample)
  --max-faults N   fault budget for --faulty exploration (default 2)
  --out PATH       write the byte-stable VERIFY artifact (default: stdout)
  --replay-out P   replay the minimal counterexample, write JSONL events
  --chrome-out P   same replay as a Chrome trace (open in Perfetto)
  --expect-violation  exit 0 only if a property is violated (CI gates the
                   broken configuration this way)

campaign flags:
  --suite S        spec list: parsec, synth, ci (both; default),
                   fastpath (idle-dominated speedup-gate runs),
                   substrate (torus / YX / west-first sweep),
                   busy (large-mesh busy-regime scalability runs),
                   pool (single 32x32 busy run for the shard-pool gate),
                   rivals (Power Punch vs. SDM circuits vs. ring router
                   at low and high load) or
                   schemes (one run per pre-registry scheme; the
                   no_drift.sh byte-identity baseline)
  --threads N      worker threads; 0 = one per core (default)
  --out DIR        artifact directory (default bench-out)
  --name NAME      artifact name: BENCH_<NAME>.json (default: the suite)
  --seed N         campaign seed (default 0xC0FFEE)
  --no-cache       ignore the result store; simulate every spec
  --naive-tick     disable quiescence fast-forwarding (cycle-by-cycle
                   reference mode; same as PP_NAIVE_TICK=1)
  --struct-tick    disable the SoA busy-tick kernel (per-router struct
                   scans; same as PP_STRUCT_TICK=1)
  --shards N       tick each network in N row shards (same as PP_SHARDS=N;
                   bit-exact for any N; N must be >= 1 and no larger than
                   the smallest mesh's rows). Shards run on a persistent
                   worker pool by default; PP_SPAWN_TICK=1 reverts to
                   spawning threads every tick (reference executor)
  --sample N       sample per-interval series every N cycles into the
                   .timing.json sidecar (forces simulation)
  --trace-out DIR  write per-run flight-recorder dumps (JSONL) into DIR
  --metrics-out P  collect per-run metric registries (forces simulation),
                   embed the merge into the .timing.json sidecar and write
                   it to P (.prom/.txt: Prometheus text; else JSON)
  PP_FAST=1 in the environment shortens every run (CI smoke mode)

metrics flags:
  --metrics-out P  write the registry snapshot to P in addition to the
                   stdout exposition (metrics/faults/trace commands)

substrate flags (any synthetic command):
  --topology T     mesh (default), torus, or cmesh:C (concentrated mesh
                   with C terminals per router); dimensions come from --mesh
  --routing R      xy (default), yx, wf (west-first), nl (north-last),
                   nf (negative-first); turn-model routings are rejected on
                   the torus (wrap links would close their turn cycles)
";

const USAGE_TAIL: &str = "patterns: uniform transpose bitcomp bitrev shuffle tornado neighbor
benchmarks: blackscholes bodytrack canneal dedup ferret fluidanimate swaptions x264";

struct Opts {
    pattern: TrafficPattern,
    scheme: SchemeKind,
    mesh: Mesh,
    topo: TopoChoice,
    routing: RoutingKind,
    rate: f64,
    cycles: u64,
    benchmark: Benchmark,
    instr: u64,
    fault_drop: f64,
    fault_corrupt: f64,
    fault_seed: u64,
    trace_out: Option<PathBuf>,
    trace_cap: usize,
    format: TraceFormat,
    metrics_out: Option<PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Jsonl,
    Csv,
}

impl TraceFormat {
    fn from_tag(tag: &str) -> Option<TraceFormat> {
        match tag {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            "csv" => Some(TraceFormat::Csv),
            _ => None,
        }
    }

    fn default_path(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "punchsim-trace.json",
            TraceFormat::Jsonl => "punchsim-trace.jsonl",
            TraceFormat::Csv => "punchsim-trace.csv",
        }
    }
}

/// Which substrate `--topology` selected; dimensions come from `--mesh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoChoice {
    Mesh,
    Torus,
    CMesh(u16),
}

impl TopoChoice {
    fn from_tag(tag: &str) -> Option<TopoChoice> {
        match tag {
            "mesh" => Some(TopoChoice::Mesh),
            "torus" => Some(TopoChoice::Torus),
            _ => {
                let c = tag.strip_prefix("cmesh:")?;
                Some(TopoChoice::CMesh(c.parse().ok()?))
            }
        }
    }
}

impl Opts {
    fn defaults() -> Opts {
        Opts {
            pattern: TrafficPattern::UniformRandom,
            scheme: SchemeKind::PowerPunchFull,
            mesh: Mesh::new(8, 8),
            topo: TopoChoice::Mesh,
            routing: RoutingKind::Xy,
            rate: 0.005,
            cycles: 20_000,
            benchmark: Benchmark::Dedup,
            instr: 80_000,
            fault_drop: 0.0,
            fault_corrupt: 0.0,
            fault_seed: 0xFA17,
            trace_out: None,
            trace_cap: 0,
            format: TraceFormat::Chrome,
            metrics_out: None,
        }
    }

    /// Defaults for the `metrics` subcommand: the busy-suite regime (a
    /// 16x16 mesh under uniform traffic), so the tick-phase profile
    /// exercises the SoA kernel, the power manager and the fast-forward
    /// path in one run.
    fn metrics_defaults() -> Opts {
        Opts {
            mesh: Mesh::new(16, 16),
            rate: 0.0005,
            cycles: 12_000,
            ..Opts::defaults()
        }
    }

    fn parse_from(mut o: Opts, args: &[String]) -> Result<Opts, String> {
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            match flag.as_str() {
                "--pattern" => {
                    o.pattern = TrafficPattern::from_tag(val)
                        .ok_or_else(|| format!("unknown pattern {val}"))?;
                }
                "--scheme" => {
                    o.scheme = SchemeKind::parse(val).map_err(|e| e.to_string())?;
                }
                "--mesh" => {
                    let (w, h) = val
                        .split_once('x')
                        .ok_or_else(|| format!("mesh must look like 8x8, got {val}"))?;
                    let w: u16 = w.parse().map_err(|_| "bad mesh width".to_string())?;
                    let h: u16 = h.parse().map_err(|_| "bad mesh height".to_string())?;
                    o.mesh = Mesh::try_new(w, h).map_err(|e| e.to_string())?;
                }
                "--topology" => {
                    o.topo = TopoChoice::from_tag(val)
                        .ok_or_else(|| format!("unknown topology {val} (mesh, torus, cmesh:C)"))?;
                }
                "--routing" => {
                    o.routing = RoutingKind::from_tag(val)
                        .ok_or_else(|| format!("unknown routing {val} (xy, yx, wf, nl, nf)"))?;
                }
                "--rate" => {
                    o.rate = val.parse().map_err(|_| "bad rate".to_string())?;
                }
                "--cycles" => {
                    o.cycles = val.parse().map_err(|_| "bad cycle count".to_string())?;
                }
                "--instr" => {
                    o.instr = val
                        .parse()
                        .map_err(|_| "bad instruction count".to_string())?;
                }
                "--benchmark" => {
                    o.benchmark = Benchmark::ALL
                        .into_iter()
                        .find(|b| b.name() == val.as_str())
                        .ok_or_else(|| format!("unknown benchmark {val}"))?;
                }
                "--faults" => {
                    o.fault_drop = parse_prob(val)?;
                }
                "--corrupt" => {
                    o.fault_corrupt = parse_prob(val)?;
                }
                "--fault-seed" => {
                    o.fault_seed = val.parse().map_err(|_| "bad fault seed".to_string())?;
                }
                "--trace-out" => o.trace_out = Some(PathBuf::from(val)),
                "--trace-cap" => {
                    o.trace_cap = val.parse().map_err(|_| "bad trace capacity".to_string())?;
                }
                "--format" => {
                    o.format = TraceFormat::from_tag(val)
                        .ok_or_else(|| format!("unknown trace format {val}"))?;
                }
                "--metrics-out" => o.metrics_out = Some(PathBuf::from(val)),
                f => return Err(format!("unknown flag {f}")),
            }
        }
        Ok(o)
    }

    /// Resolves `--topology`/`--mesh`/`--routing` into a validated
    /// substrate + routing pair. Degenerate dimensions and cyclic
    /// combinations (a turn-model router on the torus) surface as typed
    /// [`SimError::Config`] errors.
    fn noc_view(&self) -> Result<(Substrate, RoutingKind), SimError> {
        let (w, h) = (self.mesh.width(), self.mesh.height());
        let topo = match self.topo {
            TopoChoice::Mesh => Substrate::Mesh(self.mesh),
            TopoChoice::Torus => Substrate::Torus(Torus::try_new(w, h)?),
            TopoChoice::CMesh(c) => Substrate::CMesh(CMesh::try_new(w, h, c)?),
        };
        self.routing.validate_on(topo)?;
        Ok((topo, self.routing))
    }

    /// Substrate label for table headers: `8x8`, `torus8x8-yx`, ...
    fn substrate_label(&self) -> String {
        let (topo, routing) = match self.noc_view() {
            Ok(v) => v,
            Err(_) => return format!("{}x{}", self.mesh.width(), self.mesh.height()),
        };
        let mut s = topo.tag();
        if routing != RoutingKind::Xy {
            s.push('-');
            s.push_str(routing.tag());
        }
        s
    }

    fn fault_config(&self, drop: f64) -> FaultConfig {
        FaultConfig {
            seed: self.fault_seed,
            drop_punch_ppm: FaultConfig::ppm(drop),
            corrupt_punch_ppm: FaultConfig::ppm(self.fault_corrupt),
            ..FaultConfig::default()
        }
    }
}

fn parse_prob(val: &str) -> Result<f64, String> {
    let p: f64 = val.parse().map_err(|_| "bad probability".to_string())?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability {p} outside 0..=1"))
    }
}

fn run_synth(opts: &Opts, scheme: SchemeKind, rate: f64) -> Result<NetworkReport, SimError> {
    Ok(run_synth_observed(opts, scheme, rate, opts.fault_drop, 0, false)?.0)
}

/// Runs one synthetic experiment, optionally with a flight recorder of
/// `trace_cap` events attached and/or a metric registry collected;
/// returns the report, the recorded tail (empty when `trace_cap` is 0)
/// and the registry (`None` unless `collect_metrics`).
fn run_synth_observed(
    opts: &Opts,
    scheme: SchemeKind,
    rate: f64,
    drop: f64,
    trace_cap: usize,
    collect_metrics: bool,
) -> Result<(NetworkReport, Vec<Stamped>, Option<Registry>), SimError> {
    let mut cfg = SimConfig::with_scheme(scheme);
    let (topo, routing) = opts.noc_view()?;
    cfg.noc.topology = topo;
    cfg.noc.routing = routing;
    cfg.faults = opts.fault_config(drop);
    let mut sim = SyntheticSim::new(cfg, opts.pattern, rate);
    if trace_cap > 0 {
        sim.network_mut()
            .set_sink(Box::new(RingSink::new(trace_cap)));
    }
    if collect_metrics {
        sim.network_mut().enable_profiler();
    }
    let r = sim.run_experiment(opts.cycles / 4, opts.cycles)?;
    let events = sim
        .network_mut()
        .take_sink()
        .map(|s| s.snapshot())
        .unwrap_or_default();
    let registry = collect_metrics.then(|| collect_registry(sim.network_mut()));
    Ok((r, events, registry))
}

/// Drains a network's metric surface into a fresh registry: every
/// deterministic counter/histogram/plane, the tick-phase profile, and the
/// shard thread-overhead counters (creations plus pooled-tick barrier
/// waits).
fn collect_registry(net: &mut Network) -> Registry {
    let mut reg = Registry::new();
    net.export_metrics(&mut reg);
    if let Some(profiler) = net.take_profiler() {
        profiler.export(&mut reg);
    }
    let (spawn_count, spawn_nanos) = net.spawn_stats();
    reg.inc("shard_spawns_total", spawn_count);
    reg.inc("shard_spawn_nanos_total", spawn_nanos);
    let (pool_ticks, pool_wait_nanos) = net.pool_stats();
    reg.inc("shard_pool_ticks_total", pool_ticks);
    reg.inc("shard_pool_wait_nanos_total", pool_wait_nanos);
    reg
}

/// Writes a registry to `path`: Prometheus text exposition when the
/// extension is `.prom` or `.txt`, the JSON snapshot otherwise.
fn write_metrics(path: &std::path::Path, reg: &Registry) -> Result<(), String> {
    let text = match path.extension().and_then(|e| e.to_str()) {
        Some("prom") | Some("txt") => reg.to_prometheus(),
        _ => reg.to_json().render(),
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Prints the scheme registry: every registered tag with its paper label
/// and one-line description. The single source of truth for what
/// `--scheme` accepts.
fn list_schemes() -> ExitCode {
    let mut t = Table::new(["tag", "scheme", "description"]);
    for k in SchemeKind::ALL {
        t.row([
            k.tag().to_string(),
            k.label().to_string(),
            k.meta().description.to_string(),
        ]);
    }
    println!("registered schemes (pass a tag or label to --scheme):");
    println!("{t}");
    ExitCode::SUCCESS
}

fn sweep(opts: &Opts) -> Result<(), SimError> {
    let pm = PowerModel::for_scheme(opts.scheme);
    println!(
        "load sweep: {} on {} under {}",
        opts.pattern,
        opts.substrate_label(),
        opts.scheme
    );
    let mut t = Table::new(["load", "latency", "off %", "static W", "throughput"]);
    for mult in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let rate = opts.rate * mult;
        let r = run_synth(opts, opts.scheme, rate)?;
        t.row([
            format!("{rate:.4}"),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.1}", r.off_fraction() * 100.0),
            format!("{:.2}", pm.static_power_watts(&r)),
            format!("{:.4}", r.throughput()),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn schemes(opts: &Opts) -> Result<(), SimError> {
    println!(
        "scheme comparison: {} at {} flits/node/cycle on {}",
        opts.pattern,
        opts.rate,
        opts.substrate_label()
    );
    let mut t = Table::new([
        "scheme",
        "latency",
        "blocked/pkt",
        "wait/pkt",
        "off %",
        "static saved %",
    ]);
    // Every registered scheme, rivals included, with its own power model
    // (identical to the default model for the paper's five schemes).
    for scheme in SchemeKind::ALL {
        let pm = PowerModel::for_scheme(scheme);
        let r = run_synth(opts, scheme, opts.rate)?;
        t.row([
            scheme.label().to_string(),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.2}", r.avg_pg_encounters()),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{:.1}", r.off_fraction() * 100.0),
            format!("{:.1}", pm.static_savings(&r) * 100.0),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// Sweeps punch-drop probability 0..=1 under the selected scheme: delivery
/// stays at 100% of injected packets (the WU safety net) while latency
/// degrades toward conventional gating. With `--trace-out`, each sweep
/// point additionally dumps its flight recorder as JSONL for postmortems.
fn faults(opts: &Opts) -> Result<(), String> {
    println!(
        "fault sweep: {} at {} flits/node/cycle on {} under {} \
         (corrupt {:.2}, seed {:#x})",
        opts.pattern,
        opts.rate,
        opts.substrate_label(),
        opts.scheme,
        opts.fault_corrupt,
        opts.fault_seed,
    );
    let cap = match &opts.trace_out {
        Some(_) if opts.trace_cap > 0 => opts.trace_cap,
        Some(_) => DEFAULT_DUMP_CAP,
        None => 0,
    };
    let mut t = Table::new([
        "drop p",
        "delivered",
        "latency",
        "wait/pkt",
        "faults",
        "escalations",
        "off %",
    ]);
    let mut dumps = Vec::new();
    let mut merged: Option<Registry> = None;
    for drop in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let collect = opts.metrics_out.is_some();
        let (r, events, registry) =
            run_synth_observed(opts, opts.scheme, opts.rate, drop, cap, collect)
                .map_err(sim_err)?;
        if let Some(reg) = registry {
            merged.get_or_insert_with(Registry::new).merge(&reg);
        }
        t.row([
            format!("{drop:.2}"),
            format!("{}", r.stats.packets_delivered),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{}", r.pg.faults_injected),
            format!("{}", r.pg.escalations),
            format!("{:.1}", r.off_fraction() * 100.0),
        ]);
        if let Some(base) = &opts.trace_out {
            let path = faults_dump_path(base, drop);
            std::fs::write(&path, obs::to_jsonl(&events))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            dumps.push((path, events.len()));
        }
    }
    println!("{t}");
    for (path, n) in dumps {
        println!("wrote {} ({n} events)", path.display());
    }
    if let (Some(path), Some(reg)) = (&opts.metrics_out, &merged) {
        write_metrics(path, reg)?;
        println!(
            "wrote {} (merged across all 5 sweep points)",
            path.display()
        );
    }
    println!("every run completed without a stall report: punches are an");
    println!("optimization; the WU handshake keeps the delivery guarantee.");
    Ok(())
}

/// Per-drop dump path: `dump.jsonl` + 0.25 → `dump-d0.25.jsonl`.
fn faults_dump_path(base: &std::path::Path, drop: f64) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("faults-trace");
    base.with_file_name(format!("{stem}-d{drop:.2}.jsonl"))
}

/// Records one run's full event stream and writes a trace artifact.
fn trace(opts: &Opts) -> Result<(), String> {
    let mut cfg = SimConfig::with_scheme(opts.scheme);
    let (topo, routing) = opts.noc_view().map_err(sim_err)?;
    cfg.noc.topology = topo;
    cfg.noc.routing = routing;
    cfg.faults = opts.fault_config(opts.fault_drop);
    let mut sim = SyntheticSim::new(cfg, opts.pattern, opts.rate);
    let sink: Box<dyn EventSink> = if opts.trace_cap > 0 {
        Box::new(RingSink::new(opts.trace_cap))
    } else {
        Box::new(VecSink::new())
    };
    sim.network_mut().set_sink(sink);
    if opts.metrics_out.is_some() {
        sim.network_mut().enable_profiler();
    }
    sim.run_experiment(opts.cycles / 4, opts.cycles)
        .map_err(sim_err)?;
    let events = sim
        .network_mut()
        .take_sink()
        .expect("sink attached above")
        .snapshot();
    let text = match opts.format {
        TraceFormat::Chrome => obs::chrome_trace(&events),
        TraceFormat::Jsonl => obs::to_jsonl(&events),
        TraceFormat::Csv => obs::to_csv(&events),
    };
    let path = opts
        .trace_out
        .clone()
        .unwrap_or_else(|| PathBuf::from(opts.format.default_path()));
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "traced {} events: {} under {} on {} at {} flits/node/cycle",
        events.len(),
        opts.pattern,
        opts.scheme,
        opts.substrate_label(),
        opts.rate,
    );
    println!("wrote {}", path.display());
    if opts.format == TraceFormat::Chrome {
        println!("open it in https://ui.perfetto.dev or chrome://tracing");
    }
    if let Some(mpath) = &opts.metrics_out {
        let reg = collect_registry(sim.network_mut());
        write_metrics(mpath, &reg)?;
        println!("wrote {}", mpath.display());
    }
    Ok(())
}

/// Runs one profiled run in the busy regime (overridable with the usual
/// synthetic flags) and emits its metric registry: Prometheus text
/// exposition on stdout — self-validated before printing — plus a
/// trailing parseable coverage comment for `scripts/metrics_gate.sh`,
/// and optionally the JSON snapshot via `--metrics-out`.
fn metrics(opts: &Opts) -> Result<(), String> {
    let mut cfg = SimConfig::with_scheme(opts.scheme);
    let (topo, routing) = opts.noc_view().map_err(sim_err)?;
    cfg.noc.topology = topo;
    cfg.noc.routing = routing;
    cfg.faults = opts.fault_config(opts.fault_drop);
    let mut sim = SyntheticSim::new(cfg, opts.pattern, opts.rate);
    sim.network_mut().enable_profiler();
    // No warmup/reset split: the profiler and the histograms cover the
    // whole run, so phase attribution can be gated against this wall
    // clock measured around the simulation loop alone.
    let started = Instant::now();
    sim.run(opts.cycles).map_err(sim_err)?;
    let wall_nanos = (started.elapsed().as_nanos() as u64).max(1);
    let r = sim.report();
    let phase_nanos = sim
        .network()
        .profiler()
        .expect("enabled above")
        .total_nanos();
    let reg = collect_registry(sim.network_mut());
    let expo = reg.to_prometheus();
    let stats = validate_exposition(&expo).map_err(|e| format!("invalid exposition: {e}"))?;
    let coverage = phase_nanos as f64 / wall_nanos as f64;
    print!("{expo}");
    println!(
        "# punchsim_coverage phase_nanos={phase_nanos} wall_nanos={wall_nanos} \
         ratio={coverage:.4}"
    );
    if let Some(path) = &opts.metrics_out {
        write_metrics(path, &reg)?;
        eprintln!("wrote {}", path.display());
    }
    eprintln!(
        "{} samples across {} families ({} histograms); latency p50/p95/p99/max = \
         {}/{}/{}/{} cycles; phase attribution {:.1}% of {:.2} ms wall",
        stats.samples,
        stats.families,
        stats.histograms,
        r.latency_p50(),
        r.latency_p95(),
        r.latency_p99(),
        r.latency_max(),
        coverage * 100.0,
        wall_nanos as f64 / 1e6,
    );
    Ok(())
}

fn parsec(opts: &Opts) -> Result<(), SimError> {
    let mut cfg = CmpConfig::new(opts.benchmark, opts.scheme);
    cfg.instr_per_core = opts.instr;
    cfg.warmup_instr = opts.instr / 10;
    println!(
        "full-system: {} under {} ({} instructions/core)...",
        opts.benchmark, opts.scheme, opts.instr
    );
    let r = CmpSim::new(cfg).run();
    println!("completed:        {}", r.completed);
    println!("execution cycles: {}", r.exec_cycles);
    println!("L1 miss rate:     {:.3}%", r.l1_miss_rate * 100.0);
    println!("packet latency:   {:.1} cycles", r.net.avg_packet_latency());
    println!("blocked/packet:   {:.2}", r.net.avg_pg_encounters());
    println!(
        "offered load:     {:.4} flits/node/cycle",
        r.net.offered_load
    );
    println!("router off:       {:.1}%", r.net.off_fraction() * 100.0);
    Ok(())
}

fn table1() -> Result<(), SimError> {
    use punchsim::core::Codebook;
    use punchsim::types::{Direction, NodeId};
    let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
    let link = cb.link(NodeId(27), Direction::East).expect("interior");
    let mut t = Table::new(["#", "targeted routers", "punch signal"]);
    for (i, s) in link.sets().iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            s.to_string(),
            format!("{:05b}", link.encode(s).expect("in book")),
        ]);
    }
    println!("{t}");
    println!(
        "{} sets, {} bits (paper: 22 sets, 5 bits)",
        link.set_count(),
        link.width_bits()
    );
    Ok(())
}

struct CampaignOpts {
    suite: String,
    threads: usize,
    out: PathBuf,
    name: Option<String>,
    seed: u64,
    no_cache: bool,
    naive_tick: bool,
    struct_tick: bool,
    shards: usize,
    sample: u64,
    trace_out: Option<PathBuf>,
    trace_cap: usize,
    metrics_out: Option<PathBuf>,
}

impl CampaignOpts {
    fn parse(args: &[String]) -> Result<CampaignOpts, String> {
        let mut o = CampaignOpts {
            suite: "ci".to_string(),
            threads: 0,
            out: PathBuf::from("bench-out"),
            name: None,
            seed: campaign::DEFAULT_SEED,
            no_cache: false,
            naive_tick: false,
            struct_tick: false,
            shards: 1,
            sample: 0,
            trace_out: None,
            trace_cap: 0,
            metrics_out: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            // Boolean flags; everything else is a flag/value pair.
            if flag == "--no-cache" {
                o.no_cache = true;
                continue;
            }
            if flag == "--naive-tick" {
                o.naive_tick = true;
                continue;
            }
            if flag == "--struct-tick" {
                o.struct_tick = true;
                continue;
            }
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            match flag.as_str() {
                "--suite" => {
                    if ![
                        "parsec",
                        "synth",
                        "ci",
                        "fastpath",
                        "substrate",
                        "busy",
                        "pool",
                        "rivals",
                        "schemes",
                    ]
                    .contains(&val.as_str())
                    {
                        return Err(format!("unknown suite {val}"));
                    }
                    o.suite = val.clone();
                }
                "--threads" => {
                    o.threads = val.parse().map_err(|_| "bad thread count".to_string())?;
                }
                "--shards" => {
                    o.shards = val.parse().map_err(|_| "bad shard count".to_string())?;
                }
                "--out" => o.out = PathBuf::from(val),
                "--name" => o.name = Some(val.clone()),
                "--seed" => {
                    o.seed = val.parse().map_err(|_| "bad seed".to_string())?;
                }
                "--sample" => {
                    o.sample = val.parse().map_err(|_| "bad sample period".to_string())?;
                }
                "--trace-out" => o.trace_out = Some(PathBuf::from(val)),
                "--trace-cap" => {
                    o.trace_cap = val.parse().map_err(|_| "bad trace capacity".to_string())?;
                }
                "--metrics-out" => o.metrics_out = Some(PathBuf::from(val)),
                f => return Err(format!("unknown flag {f}")),
            }
        }
        Ok(o)
    }

    /// Effective flight-recorder capacity: 0 unless `--trace-out` is given.
    fn effective_trace_cap(&self) -> usize {
        match &self.trace_out {
            Some(_) if self.trace_cap > 0 => self.trace_cap,
            Some(_) => DEFAULT_DUMP_CAP,
            None => 0,
        }
    }

    fn specs(&self) -> Vec<RunSpec> {
        match self.suite.as_str() {
            "parsec" => campaign::parsec_suite(self.seed),
            "synth" => campaign::synthetic_suite(self.seed),
            "fastpath" => campaign::fastpath_suite(self.seed),
            "substrate" => campaign::substrate_suite(self.seed),
            "busy" => campaign::busy_suite(self.seed),
            "pool" => campaign::pool_suite(self.seed),
            "rivals" => campaign::rivals_suite(self.seed),
            "schemes" => campaign::schemes_suite(self.seed),
            _ => campaign::ci_suite(self.seed),
        }
    }

    /// Checks `--shards` against every spec in the suite *before* any run
    /// starts, so a bad count is one typed [`ConfigError`] up front rather
    /// than a per-run failure midway through the campaign. Mirrors
    /// `Network::set_shards`: sharding splits the mesh into row bands, so
    /// the count must fit the smallest topology's rows.
    fn validate_shards(&self, specs: &[RunSpec]) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        for spec in specs {
            let rows = match &spec.workload {
                Workload::Synthetic { topo, .. } => topo.height(),
                // Full-system runs drive CmpConfig's fixed 8x8 mesh.
                Workload::Parsec { .. } => 8,
            };
            if self.shards > rows as usize {
                return Err(ConfigError::ShardsExceedRows {
                    shards: self.shards,
                    rows,
                });
            }
        }
        Ok(())
    }
}

fn campaign_cmd(args: &[String]) -> ExitCode {
    let opts = match CampaignOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.naive_tick {
        // Before any worker thread exists: every Network built by this
        // process ticks cycle-by-cycle (the differential reference mode).
        std::env::set_var("PP_NAIVE_TICK", "1");
    }
    if opts.struct_tick {
        std::env::set_var("PP_STRUCT_TICK", "1");
    }
    let specs = opts.specs();
    if let Err(e) = opts.validate_shards(&specs) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if opts.shards != 1 {
        std::env::set_var("PP_SHARDS", opts.shards.to_string());
    }
    let name = opts.name.clone().unwrap_or_else(|| opts.suite.clone());
    let runner = Runner {
        threads: opts.threads,
        store: if opts.no_cache {
            None
        } else {
            Some(Store::in_target())
        },
        sample_every: opts.sample,
        trace_cap: opts.effective_trace_cap(),
        collect_metrics: opts.metrics_out.is_some(),
    };
    let threads = runner.effective_threads(specs.len());
    eprintln!(
        "campaign {name}: {} runs on {threads} thread(s){}",
        specs.len(),
        if campaign::fast_mode() {
            " [PP_FAST=1]"
        } else {
            ""
        }
    );
    let total = specs.len();
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    let outcomes = runner.run_with(&specs, &|_, outcome| {
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        match outcome {
            Outcome::Done(rec) => {
                let how = match rec.cycles_per_sec() {
                    Some(cps) => format!("{:.0} cycles/sec", cps),
                    None => "cached".to_string(),
                };
                eprintln!("[{n}/{total}] {} ({how})", rec.spec.id());
            }
            Outcome::Failed(err) => eprintln!("[{n}/{total}] FAILED {err}"),
        }
    });
    let report = CampaignReport {
        name,
        threads,
        outcomes,
        wall_nanos: started.elapsed().as_nanos() as u64,
    };
    let (main_path, timing_path) = match report.write_artifacts(&opts.out) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!(
                "error: cannot write artifacts to {}: {e}",
                opts.out.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &opts.trace_out {
        if let Err(e) = write_campaign_dumps(dir, &report) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.metrics_out {
        match report.merged_registry() {
            Some(reg) => {
                if let Err(e) = write_metrics(path, &reg) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            None => eprintln!("note: no run produced metrics; nothing to write"),
        }
    }
    let cached = report
        .outcomes
        .iter()
        .filter_map(Outcome::record)
        .filter(|r| r.cached)
        .count();
    println!(
        "{} runs ({cached} cached), {} failure(s), {:.1}s wall clock",
        total,
        report.failures(),
        report.wall_nanos as f64 / 1e9
    );
    println!("wrote {}", main_path.display());
    println!("wrote {}", timing_path.display());
    if report.failures() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes one JSONL flight-recorder dump per traced run into `dir`,
/// named after the run id (`/` → `_`).
fn write_campaign_dumps(dir: &std::path::Path, report: &CampaignReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = 0usize;
    for rec in report.outcomes.iter().filter_map(Outcome::record) {
        if rec.events.is_empty() {
            continue;
        }
        let name = format!("{}.trace.jsonl", rec.spec.id().replace('/', "_"));
        let path = dir.join(name);
        std::fs::write(&path, obs::to_jsonl(&rec.events))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written += 1;
    }
    println!("wrote {written} trace dump(s) into {}", dir.display());
    Ok(())
}

struct CompareOpts {
    baseline: PathBuf,
    current: PathBuf,
    tol: Tolerances,
}

impl CompareOpts {
    fn parse(args: &[String]) -> Result<CompareOpts, String> {
        let mut paths = Vec::new();
        let mut tol = Tolerances::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let val = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{flag}"))?;
                let v: f64 = val.parse().map_err(|_| format!("bad value for --{flag}"))?;
                match flag {
                    "tol-latency" => tol.latency_rel = v,
                    "tol-delivered" => tol.delivered_rel = v,
                    "tol-escalations" => tol.escalations_abs = v,
                    f => return Err(format!("unknown flag --{f}")),
                }
            } else {
                paths.push(PathBuf::from(arg));
            }
        }
        let [baseline, current] = <[PathBuf; 2]>::try_from(paths)
            .map_err(|_| "compare needs exactly BASELINE and CURRENT paths".to_string())?;
        Ok(CompareOpts {
            baseline,
            current,
            tol,
        })
    }
}

/// Per-run latency percentiles of a campaign artifact, keyed by run id
/// (empty for pre-v2 artifacts without percentile keys).
fn artifact_percentiles(doc: &Json) -> Vec<(String, [u64; 4])> {
    let mut out = Vec::new();
    let Some(runs) = doc.get("runs").and_then(|r| r.as_arr()) else {
        return out;
    };
    for run in runs {
        let (Some(id), Some(m)) = (run.get("id").and_then(|i| i.as_str()), run.get("metrics"))
        else {
            continue;
        };
        let q = |key: &str| m.get(key).and_then(|v| v.as_u64());
        if let (Some(p50), Some(p95), Some(p99), Some(max)) = (
            q("latency_p50"),
            q("latency_p95"),
            q("latency_p99"),
            q("latency_max"),
        ) {
            out.push((id.to_string(), [p50, p95, p99, max]));
        }
    }
    out
}

/// Prints per-run latency percentiles side by side (baseline → current)
/// for every run both artifacts carry percentiles for. Informational —
/// the perf gate itself stays mean-latency based, so older v1 artifacts
/// (no percentile keys) simply print nothing here.
fn print_percentiles(base: &Json, cur: &Json) {
    let b = artifact_percentiles(base);
    let c = artifact_percentiles(cur);
    let mut t = Table::new(["run", "p50", "p95", "p99", "max"]);
    let mut rows = 0;
    for (id, bq) in &b {
        let Some((_, cq)) = c.iter().find(|(cid, _)| cid == id) else {
            continue;
        };
        t.row([
            id.clone(),
            format!("{} -> {}", bq[0], cq[0]),
            format!("{} -> {}", bq[1], cq[1]),
            format!("{} -> {}", bq[2], cq[2]),
            format!("{} -> {}", bq[3], cq[3]),
        ]);
        rows += 1;
    }
    if rows > 0 {
        println!("latency percentiles, cycles (baseline -> current):");
        println!("{t}");
    }
}

fn load_artifact(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn compare_cmd(args: &[String]) -> ExitCode {
    let opts = match CompareOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = load_artifact(&opts.baseline).and_then(|base| {
        let cur = load_artifact(&opts.current)?;
        let cmp = compare::compare(&base, &cur, &opts.tol)?;
        Ok((base, cur, cmp))
    });
    let (base, cur, cmp) = match result {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in &cmp.run_errors {
        println!("FAILED RUN {id}");
    }
    for id in &cmp.missing {
        println!("MISSING    {id}");
    }
    for d in &cmp.deviations {
        println!("DRIFT      {d}");
    }
    for id in &cmp.extra {
        println!("note: ungated new run {id}");
    }
    print_percentiles(&base, &cur);
    if cmp.passed() {
        println!(
            "perf gate passed: {} run(s) within tolerance (latency ±{:.0}%, \
             delivered ±{:.0}%, escalations ±{})",
            cmp.checked,
            opts.tol.latency_rel * 100.0,
            opts.tol.delivered_rel * 100.0,
            opts.tol.escalations_abs
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate FAILED: {} deviation(s), {} missing run(s), {} failed run(s)",
            cmp.deviations.len(),
            cmp.missing.len(),
            cmp.run_errors.len()
        );
        ExitCode::FAILURE
    }
}

/// Options of the `verify` subcommand. Boolean mode flags put it outside
/// the flag/value `Opts` grammar, so it parses its own argument list.
struct VerifyOpts {
    width: u16,
    height: u16,
    scheme: SchemeKind,
    faulty: bool,
    broken: bool,
    max_faults: u32,
    out: Option<PathBuf>,
    replay_out: Option<PathBuf>,
    chrome_out: Option<PathBuf>,
    expect_violation: bool,
}

impl VerifyOpts {
    fn parse(args: &[String]) -> Result<VerifyOpts, String> {
        let mut o = VerifyOpts {
            width: 2,
            height: 2,
            scheme: SchemeKind::PowerPunchFull,
            faulty: false,
            broken: false,
            max_faults: 2,
            out: None,
            replay_out: None,
            chrome_out: None,
            expect_violation: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--faulty" => o.faulty = true,
                "--broken" => o.broken = true,
                "--expect-violation" => o.expect_violation = true,
                _ => {
                    let val = it
                        .next()
                        .ok_or_else(|| format!("missing value for {flag}"))?;
                    match flag.as_str() {
                        "--mesh" => {
                            let (w, h) = val
                                .split_once('x')
                                .ok_or_else(|| format!("mesh must look like 2x2, got {val}"))?;
                            o.width = w.parse().map_err(|_| "bad mesh width".to_string())?;
                            o.height = h.parse().map_err(|_| "bad mesh height".to_string())?;
                        }
                        "--scheme" => {
                            o.scheme = SchemeKind::parse(val).map_err(|e| e.to_string())?;
                        }
                        "--max-faults" => {
                            o.max_faults =
                                val.parse().map_err(|_| "bad fault budget".to_string())?;
                        }
                        "--out" => o.out = Some(PathBuf::from(val)),
                        "--replay-out" => o.replay_out = Some(PathBuf::from(val)),
                        "--chrome-out" => o.chrome_out = Some(PathBuf::from(val)),
                        f => return Err(format!("unknown flag {f}")),
                    }
                }
            }
        }
        if usize::from(o.width) * usize::from(o.height) > 9 {
            return Err(format!(
                "verify explores the joint state space exhaustively; meshes beyond \
                 9 routers are intractable (got {}x{})",
                o.width, o.height
            ));
        }
        Ok(o)
    }
}

fn verify_cmd(args: &[String]) -> ExitCode {
    let opts = match VerifyOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = VerifyConfig::mesh2x2(opts.scheme);
    cfg.width = opts.width;
    cfg.height = opts.height;
    cfg.faulty = opts.faulty;
    cfg.broken = opts.broken;
    cfg.max_faults = opts.max_faults;
    let started = Instant::now();
    let out = match run_verification(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exp = &out.exploration;
    eprintln!(
        "verify {}: {} states, {} edges, {} terminal(s), depth {} in {:.2?}",
        cfg.label(),
        exp.reachable,
        exp.edges,
        exp.terminals,
        exp.max_depth,
        started.elapsed()
    );
    for p in &exp.properties {
        eprintln!(
            "  {:<16} {}  ({})",
            p.name,
            if p.proved { "proved" } else { "VIOLATED" },
            p.detail
        );
    }
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &out.report) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{}", out.report),
    }
    if opts.replay_out.is_some() || opts.chrome_out.is_some() {
        match exp.first_counterexample() {
            None => eprintln!("note: nothing to replay — all properties proved"),
            Some(ce) => {
                let rep = match punchsim::verify::replay(&cfg, ce) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: counterexample replay failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                eprintln!(
                    "replayed {}-step {} counterexample: {} event(s){}",
                    ce.choices.len(),
                    ce.kind.label(),
                    rep.events.len(),
                    match &rep.error {
                        Some(e) => format!(", ending in: {e}"),
                        None => String::new(),
                    }
                );
                for (path, body) in [
                    (&opts.replay_out, rep.to_jsonl()),
                    (&opts.chrome_out, rep.to_chrome_trace()),
                ] {
                    if let Some(path) = path {
                        if let Err(e) = std::fs::write(path, body) {
                            eprintln!("error: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {}", path.display());
                    }
                }
            }
        }
    }
    if exp.all_proved() == opts.expect_violation {
        eprintln!(
            "verify FAILED: {}",
            if opts.expect_violation {
                "expected a violation, but every property proved"
            } else {
                "a property was violated"
            }
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse_from(Opts::defaults(), &v)
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scheme, SchemeKind::PowerPunchFull);
        assert_eq!(o.mesh, Mesh::new(8, 8));
        assert_eq!(o.benchmark, Benchmark::Dedup);
        assert_eq!(o.fault_drop, 0.0);
        assert!(!o.fault_config(o.fault_drop).is_active());
    }

    #[test]
    fn flags_parse() {
        let o = parse(&[
            "--scheme",
            "convopt",
            "--mesh",
            "4x4",
            "--rate",
            "0.01",
            "--pattern",
            "transpose",
            "--benchmark",
            "canneal",
            "--cycles",
            "500",
            "--instr",
            "1000",
        ])
        .unwrap();
        assert_eq!(o.scheme, SchemeKind::ConvOptPg);
        assert_eq!(o.mesh, Mesh::new(4, 4));
        assert_eq!(o.rate, 0.01);
        assert_eq!(o.pattern, TrafficPattern::Transpose);
        assert_eq!(o.benchmark, Benchmark::Canneal);
        assert_eq!(o.cycles, 500);
        assert_eq!(o.instr, 1000);
    }

    #[test]
    fn topology_and_routing_flags_parse() {
        let o = parse(&["--topology", "torus", "--routing", "yx", "--mesh", "6x6"]).unwrap();
        assert_eq!(o.topo, TopoChoice::Torus);
        assert_eq!(o.routing, RoutingKind::Yx);
        let (topo, routing) = o.noc_view().unwrap();
        assert_eq!(topo, Substrate::Torus(Torus::new(6, 6)));
        assert_eq!(routing, RoutingKind::Yx);
        assert_eq!(o.substrate_label(), "torus6x6-yx");

        let o = parse(&["--topology", "cmesh:4", "--mesh", "4x4"]).unwrap();
        assert_eq!(o.topo, TopoChoice::CMesh(4));
        let (topo, _) = o.noc_view().unwrap();
        assert_eq!(topo.concentration(), 4);
        assert_eq!(o.substrate_label(), "c4x4x4");
    }

    #[test]
    fn default_substrate_is_the_plain_xy_mesh() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.topo, TopoChoice::Mesh);
        assert_eq!(o.routing, RoutingKind::Xy);
        let (topo, routing) = o.noc_view().unwrap();
        assert_eq!(topo, Substrate::Mesh(Mesh::new(8, 8)));
        assert_eq!(routing, RoutingKind::Xy);
        assert_eq!(o.substrate_label(), "8x8");
    }

    #[test]
    fn turn_model_routing_on_torus_is_a_typed_error() {
        let o = parse(&["--topology", "torus", "--routing", "wf"]).unwrap();
        let err = o.noc_view().unwrap_err();
        assert!(
            matches!(err, SimError::Config(ConfigError::CyclicRouting { .. })),
            "expected CyclicRouting, got {err:?}"
        );
        // XY and YX stay legal on the torus (dateline-free minimal DOR is
        // the model here; the codebook only needs the turn relation).
        for r in ["xy", "yx"] {
            let o = parse(&["--topology", "torus", "--routing", r]).unwrap();
            assert!(o.noc_view().is_ok(), "{r} must be legal on the torus");
        }
    }

    #[test]
    fn bad_topology_flags_are_rejected() {
        assert!(parse(&["--topology", "hypercube"]).is_err());
        assert!(parse(&["--topology", "cmesh:0"]).is_ok()); // parses...
        let o = parse(&["--topology", "cmesh:0"]).unwrap();
        assert!(o.noc_view().is_err()); // ...but fails typed validation
        assert!(parse(&["--routing", "adaptive"]).is_err());
        assert!(parse(&["--mesh", "0x8"]).is_err(), "zero dims via try_new");
    }

    #[test]
    fn fault_flags_parse_into_config() {
        let o = parse(&["--faults", "0.5", "--corrupt", "0.25", "--fault-seed", "42"]).unwrap();
        assert_eq!(o.fault_drop, 0.5);
        assert_eq!(o.fault_corrupt, 0.25);
        assert_eq!(o.fault_seed, 42);
        let f = o.fault_config(o.fault_drop);
        assert!(f.is_active());
        assert_eq!(f.drop_punch_ppm, 500_000);
        assert_eq!(f.corrupt_punch_ppm, 250_000);
        assert_eq!(f.seed, 42);
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&[
            "--trace-out",
            "t.jsonl",
            "--trace-cap",
            "128",
            "--format",
            "jsonl",
        ])
        .unwrap();
        assert_eq!(o.trace_out, Some(PathBuf::from("t.jsonl")));
        assert_eq!(o.trace_cap, 128);
        assert_eq!(o.format, TraceFormat::Jsonl);
        // Defaults: Chrome trace, unbounded capture, conventional name.
        let d = parse(&[]).unwrap();
        assert_eq!(d.trace_out, None);
        assert_eq!(d.trace_cap, 0);
        assert_eq!(d.format, TraceFormat::Chrome);
        assert_eq!(d.format.default_path(), "punchsim-trace.json");
    }

    #[test]
    fn metrics_flags_and_defaults_parse() {
        // No registry collection unless asked for.
        assert_eq!(parse(&[]).unwrap().metrics_out, None);
        let o = parse(&["--metrics-out", "m.prom"]).unwrap();
        assert_eq!(o.metrics_out, Some(PathBuf::from("m.prom")));
        // The metrics subcommand defaults to the busy regime, still
        // overridable by the usual flags.
        let m = Opts::parse_from(Opts::metrics_defaults(), &[]).unwrap();
        assert_eq!(m.mesh, Mesh::new(16, 16));
        assert_eq!(m.rate, 0.0005);
        assert_eq!(m.cycles, 12_000);
        assert_eq!(m.scheme, SchemeKind::PowerPunchFull);
        let m = Opts::parse_from(Opts::metrics_defaults(), &strs(&["--mesh", "4x4"])).unwrap();
        assert_eq!(m.mesh, Mesh::new(4, 4));
        assert_eq!(m.cycles, 12_000);
    }

    #[test]
    fn faults_dump_paths_encode_drop_rate() {
        let p = faults_dump_path(std::path::Path::new("out/dump.jsonl"), 0.25);
        assert_eq!(p, PathBuf::from("out/dump-d0.25.jsonl"));
        let p = faults_dump_path(std::path::Path::new("dump"), 1.0);
        assert_eq!(p, PathBuf::from("dump-d1.00.jsonl"));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse(&["--scheme", "warp9"]).is_err());
        assert!(parse(&["--mesh", "8by8"]).is_err());
        assert!(parse(&["--mesh"]).is_err());
        assert!(parse(&["--rate", "fast"]).is_err());
        assert!(parse(&["--wormhole", "1"]).is_err());
        assert!(parse(&["--benchmark", "doom"]).is_err());
        assert!(parse(&["--faults", "1.5"]).is_err());
        assert!(parse(&["--corrupt", "-0.1"]).is_err());
        assert!(parse(&["--fault-seed", "xyz"]).is_err());
        assert!(parse(&["--format", "xml"]).is_err());
        assert!(parse(&["--trace-cap", "lots"]).is_err());
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn campaign_defaults_and_flags_parse() {
        let o = CampaignOpts::parse(&[]).unwrap();
        assert_eq!(o.suite, "ci");
        assert_eq!(o.threads, 0);
        assert_eq!(o.out, PathBuf::from("bench-out"));
        assert_eq!(o.seed, campaign::DEFAULT_SEED);
        assert!(!o.no_cache);
        assert!(!o.naive_tick);
        assert!(!o.struct_tick);
        assert_eq!(o.shards, 1);
        assert!(!o.specs().is_empty());

        let o = CampaignOpts::parse(&strs(&[
            "--suite",
            "synth",
            "--threads",
            "3",
            "--shards",
            "4",
            "--out",
            "tmp",
            "--name",
            "pr",
            "--seed",
            "7",
            "--no-cache",
            "--naive-tick",
            "--struct-tick",
        ]))
        .unwrap();
        assert_eq!(o.suite, "synth");
        assert_eq!(o.threads, 3);
        assert_eq!(o.shards, 4);
        assert_eq!(o.out, PathBuf::from("tmp"));
        assert_eq!(o.name.as_deref(), Some("pr"));
        assert_eq!(o.seed, 7);
        assert!(o.no_cache);
        assert!(o.naive_tick);
        assert!(o.struct_tick);
        assert_eq!(o.specs().len(), campaign::synthetic_suite(7).len());

        let o = CampaignOpts::parse(&strs(&["--suite", "busy"])).unwrap();
        assert_eq!(o.specs().len(), campaign::busy_suite(o.seed).len());
    }

    #[test]
    fn campaign_shard_counts_are_validated_up_front() {
        // `--shards 0` is a typed ConfigError, not a panic or a per-run
        // failure.
        let o = CampaignOpts::parse(&strs(&["--shards", "0"])).unwrap();
        let specs = o.specs();
        assert!(matches!(
            o.validate_shards(&specs),
            Err(ConfigError::ZeroShards)
        ));
        // The ci suite's 8x8 meshes cap the shard count at 8 rows.
        let o = CampaignOpts::parse(&strs(&["--shards", "9"])).unwrap();
        let specs = o.specs();
        assert!(matches!(
            o.validate_shards(&specs),
            Err(ConfigError::ShardsExceedRows { shards: 9, rows: 8 })
        ));
        // The busy suite's smallest mesh is 16x16, so 9 shards fit there.
        let o = CampaignOpts::parse(&strs(&["--suite", "busy", "--shards", "9"])).unwrap();
        let specs = o.specs();
        assert!(o.validate_shards(&specs).is_ok());
        let o = CampaignOpts::parse(&strs(&["--suite", "busy", "--shards", "17"])).unwrap();
        let specs = o.specs();
        assert!(matches!(
            o.validate_shards(&specs),
            Err(ConfigError::ShardsExceedRows {
                shards: 17,
                rows: 16
            })
        ));
    }

    #[test]
    fn campaign_observation_flags_parse() {
        let o = CampaignOpts::parse(&[]).unwrap();
        assert_eq!(o.sample, 0);
        assert_eq!(o.effective_trace_cap(), 0);

        let o = CampaignOpts::parse(&strs(&["--sample", "500", "--trace-out", "dumps"])).unwrap();
        assert_eq!(o.sample, 500);
        assert_eq!(o.trace_out, Some(PathBuf::from("dumps")));
        // --trace-out alone gets the default capacity...
        assert_eq!(o.effective_trace_cap(), DEFAULT_DUMP_CAP);
        // ...and --trace-cap overrides it.
        let o = CampaignOpts::parse(&strs(&["--trace-out", "dumps", "--trace-cap", "64"])).unwrap();
        assert_eq!(o.effective_trace_cap(), 64);
        // --trace-cap without --trace-out keeps tracing off.
        let o = CampaignOpts::parse(&strs(&["--trace-cap", "64"])).unwrap();
        assert_eq!(o.effective_trace_cap(), 0);
        assert!(CampaignOpts::parse(&strs(&["--sample", "often"])).is_err());
        // --metrics-out drives registry collection.
        let o = CampaignOpts::parse(&[]).unwrap();
        assert_eq!(o.metrics_out, None);
        let o = CampaignOpts::parse(&strs(&["--metrics-out", "m.json"])).unwrap();
        assert_eq!(o.metrics_out, Some(PathBuf::from("m.json")));
    }

    #[test]
    fn campaign_bad_inputs_are_rejected() {
        assert!(CampaignOpts::parse(&strs(&["--suite", "quantum"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--threads", "many"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--shards", "lots"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--shards"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--name"])).is_err());
        assert!(CampaignOpts::parse(&strs(&["--cache", "1"])).is_err());
    }

    #[test]
    fn compare_opts_parse() {
        let o = CompareOpts::parse(&strs(&["a.json", "b.json"])).unwrap();
        assert_eq!(o.baseline, PathBuf::from("a.json"));
        assert_eq!(o.current, PathBuf::from("b.json"));
        assert_eq!(o.tol, Tolerances::default());

        let o = CompareOpts::parse(&strs(&[
            "--tol-latency",
            "0.1",
            "a.json",
            "--tol-escalations",
            "5",
            "b.json",
        ]))
        .unwrap();
        assert_eq!(o.tol.latency_rel, 0.1);
        assert_eq!(o.tol.escalations_abs, 5.0);
        assert_eq!(o.tol.delivered_rel, Tolerances::default().delivered_rel);

        assert!(CompareOpts::parse(&strs(&["only-one.json"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "c"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "--tol-latency", "x"])).is_err());
        assert!(CompareOpts::parse(&strs(&["a", "b", "--tol-jitter", "1"])).is_err());
    }
}
